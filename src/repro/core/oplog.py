"""The usage log (Figure 4.1's output artefact).

Every executed system call becomes an :class:`OpRecord`; every login
session a :class:`SessionRecord`.  The log round-trips to a line-oriented
text format so that runs can be archived and re-analysed, and the
:class:`~repro.core.analyzer.UsageAnalyzer` consumes it directly.

The executors in :mod:`repro.core.usim` record through the
:class:`OpSink` protocol rather than the concrete :class:`UsageLog`, so a
run may stream into any accumulator — the fleet layer
(:mod:`repro.fleet`) uses an online statistics sink that never stores
individual records, which is what keeps million-operation shard runs in
constant memory.
"""

from __future__ import annotations

import io
import itertools
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - opbatch imports OpRecord from here
    from .opbatch import OpBatch

__all__ = [
    "OpRecord",
    "SessionRecord",
    "OpSink",
    "SessionAccounting",
    "apply_op_effects",
    "UsageLog",
]

_OP_FIELDS = 9
_SESSION_FIELDS = 9

# Text-format escaping: string fields (paths above all) may contain the
# tab separator, newlines, or the comma used to join category lists, any
# of which would silently corrupt the line format.  ``\`` escapes keep
# the format line-oriented and human-readable while making round-trips
# lossless for arbitrary strings.
_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r", ",": ","}

# Almost every field is a plain path or type name with nothing to
# escape; one compiled-regex scan decides that and skips the five
# str.replace passes on the hot serialisation path.
_NEEDS_ESCAPE = re.compile(r"[\\\t\n\r]")
_NEEDS_ESCAPE_COMMA = re.compile(r"[\\\t\n\r,]")


def _escape(value: str, comma: bool = False) -> str:
    pattern = _NEEDS_ESCAPE_COMMA if comma else _NEEDS_ESCAPE
    if pattern.search(value) is None:
        return value
    for raw, escaped in _ESCAPES.items():
        value = value.replace(raw, escaped)
    if comma:
        value = value.replace(",", "\\,")
    return value


def _unescape(value: str) -> str:
    if "\\" not in value:
        return value
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ValueError(f"dangling escape in field {value!r}")
            key = value[i + 1]
            if key not in _UNESCAPES:
                raise ValueError(f"unknown escape \\{key} in field {value!r}")
            out.append(_UNESCAPES[key])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_categories(field_text: str) -> tuple[str, ...]:
    """Split a comma-joined category list, honouring ``\\,`` escapes."""
    parts: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(field_text):
        ch = field_text[i]
        if ch == "\\" and i + 1 < len(field_text):
            current.append(ch)
            current.append(field_text[i + 1])
            i += 2
        elif ch == ",":
            parts.append("".join(current))
            current = []
            i += 1
        else:
            current.append(ch)
            i += 1
    parts.append("".join(current))
    return tuple(_unescape(p) for p in parts if p)


@dataclass(frozen=True)
class OpRecord:
    """One executed file I/O system call."""

    user_id: int
    user_type: str
    session_id: int
    op: str
    path: str
    category_key: str
    size: int
    start_us: float
    response_us: float

    def to_line(self) -> str:
        """Serialise as a tab-separated line."""
        return "\t".join(
            (
                "OP",
                str(self.user_id),
                _escape(self.user_type),
                str(self.session_id),
                _escape(self.op),
                _escape(self.path),
                _escape(self.category_key),
                str(self.size),
                repr(self.start_us),
                repr(self.response_us),
            )
        )

    @classmethod
    def from_line(cls, line: str) -> "OpRecord":
        """Parse a line produced by :meth:`to_line`."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != _OP_FIELDS + 1 or parts[0] != "OP":
            raise ValueError(f"not an OP record: {line!r}")
        return cls(
            user_id=int(parts[1]),
            user_type=_unescape(parts[2]),
            session_id=int(parts[3]),
            op=_unescape(parts[4]),
            path=_unescape(parts[5]),
            category_key=_unescape(parts[6]),
            size=int(parts[7]),
            start_us=float(parts[8]),
            response_us=float(parts[9]),
        )


@dataclass(frozen=True)
class SessionRecord:
    """One login session's summary."""

    user_id: int
    user_type: str
    session_id: int
    start_us: float
    end_us: float
    files_referenced: int
    bytes_accessed: int
    file_bytes_referenced: int
    categories: tuple[str, ...]

    @property
    def duration_us(self) -> float:
        """Wall (or simulated) session length."""
        return self.end_us - self.start_us

    @property
    def access_per_byte(self) -> float:
        """Session-average access-per-byte (Figure 5.3's quantity)."""
        if self.file_bytes_referenced <= 0:
            return 0.0
        return self.bytes_accessed / self.file_bytes_referenced

    @property
    def mean_file_size(self) -> float:
        """Session-average referenced file size (Figure 5.4's quantity)."""
        if self.files_referenced <= 0:
            return 0.0
        return self.file_bytes_referenced / self.files_referenced

    def to_line(self) -> str:
        """Serialise as a tab-separated line."""
        return "\t".join(
            (
                "SESSION",
                str(self.user_id),
                _escape(self.user_type),
                str(self.session_id),
                repr(self.start_us),
                repr(self.end_us),
                str(self.files_referenced),
                str(self.bytes_accessed),
                str(self.file_bytes_referenced),
                ",".join(_escape(c, comma=True) for c in self.categories),
            )
        )

    @classmethod
    def from_line(cls, line: str) -> "SessionRecord":
        """Parse a line produced by :meth:`to_line`."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != _SESSION_FIELDS + 1 or parts[0] != "SESSION":
            raise ValueError(f"not a SESSION record: {line!r}")
        return cls(
            user_id=int(parts[1]),
            user_type=_unescape(parts[2]),
            session_id=int(parts[3]),
            start_us=float(parts[4]),
            end_us=float(parts[5]),
            files_referenced=int(parts[6]),
            bytes_accessed=int(parts[7]),
            file_bytes_referenced=int(parts[8]),
            categories=_split_categories(parts[9]),
        )


class SessionAccounting:
    """Accumulates one session's measures into a :class:`SessionRecord`.

    Shared by every execution backend (DES, fast replay, real runner) so
    the session summaries they record are computed identically.
    """

    def __init__(self, user_id: int, user_type: str, session_id: int,
                 start_us: float):
        self.user_id = user_id
        self.user_type = user_type
        self.session_id = session_id
        self.start_us = start_us
        self.file_sizes: dict[str, int] = {}
        self.bytes_accessed = 0
        self.categories: set[str] = set()

    def saw_file(self, path: str, size: int, category_key: str | None) -> None:
        """Note a referenced file; a growing file keeps its maximum size."""
        self.file_sizes[path] = max(self.file_sizes.get(path, 0), size)
        if category_key:
            self.categories.add(category_key)

    def accessed(self, nbytes: int) -> None:
        """Count ``nbytes`` of data movement."""
        self.bytes_accessed += nbytes

    def finish(self, end_us: float) -> SessionRecord:
        """Close the session and produce its summary record."""
        return SessionRecord(
            user_id=self.user_id,
            user_type=self.user_type,
            session_id=self.session_id,
            start_us=self.start_us,
            end_us=end_us,
            files_referenced=len(self.file_sizes),
            bytes_accessed=self.bytes_accessed,
            file_bytes_referenced=sum(self.file_sizes.values()),
            categories=tuple(sorted(self.categories)),
        )


def apply_op_effects(op, accounting: SessionAccounting,
                     moved: "int | None" = None) -> int:
    """Fold one executed op into ``accounting``; return the size to record.

    This is the single source of truth for what each op kind contributes
    to session measures and to the :class:`OpRecord` ``size`` column:
    open/creat/stat reference a file (size 0 recorded), read/write move
    ``moved`` bytes (the executor's observed count, defaulting to the
    synthesized ``op.size``), listdir moves the directory size, and
    lseek/close/unlink move nothing.  Every execution backend (DES, fast
    replay, real runner) goes through here, which is what keeps their
    recorded streams byte-identical.
    """
    kind = op.kind
    if kind in ("open", "creat", "stat"):
        accounting.saw_file(op.path, op.size, op.category_key)
        return 0
    if kind in ("read", "write"):
        nbytes = op.size if moved is None else moved
        accounting.accessed(nbytes)
        return nbytes
    if kind == "listdir":
        accounting.accessed(op.size)
        return op.size
    if kind in ("lseek", "close", "unlink"):
        return 0
    raise ValueError(f"unknown op kind {kind!r}")


@runtime_checkable
class OpSink(Protocol):
    """Anything a workload executor can record into.

    :class:`UsageLog` is the archival implementation;
    :class:`repro.fleet.merge.ShardAccumulator` is the constant-memory
    one used for large fleet runs.

    Sinks *may* additionally implement ``record_batch(batch: OpBatch)``
    to fold whole columnar batches: the columnar backend probes for it
    with ``getattr`` and otherwise falls back to per-record
    ``record_op`` calls through the
    :meth:`~repro.core.opbatch.OpBatch.to_records` bridge, so a sink
    that only implements the two scalar methods keeps working — it just
    forgoes the vectorized fold.  (``record_batch`` is deliberately not
    part of the runtime-checkable protocol surface: listing it would
    make ``isinstance(sink, OpSink)`` reject exactly the minimal sinks
    the fallback exists for.)
    """

    def record_op(self, record: OpRecord) -> None: ...

    def record_session(self, record: SessionRecord) -> None: ...


@dataclass
class UsageLog:
    """The complete record of one workload run."""

    operations: list[OpRecord] = field(default_factory=list)
    sessions: list[SessionRecord] = field(default_factory=list)

    def record_op(self, record: OpRecord) -> None:
        """Append an operation record."""
        self.operations.append(record)

    def record_session(self, record: SessionRecord) -> None:
        """Append a session summary."""
        self.sessions.append(record)

    def record_batch(self, batch: "OpBatch") -> None:
        """Append a columnar batch's rows as operation records."""
        self.operations.extend(batch.to_records())

    def extend(self, other: "UsageLog") -> None:
        """Merge another log into this one."""
        self.operations.extend(other.operations)
        self.sessions.extend(other.sessions)

    @classmethod
    def merged(cls, logs: Iterable["UsageLog"]) -> "UsageLog":
        """Concatenate several logs in the given order.

        The fleet layer merges per-shard logs shard-by-shard, so the
        result is deterministic for a fixed shard order even though the
        interleaving *within* each shard followed that shard's own
        simulation clock.
        """
        merged = cls()
        for log in logs:
            merged.extend(log)
        return merged

    # -- queries ---------------------------------------------------------------

    def data_ops(self) -> Iterator[OpRecord]:
        """Only the byte-moving calls (read/write)."""
        return (op for op in self.operations if op.op in ("read", "write"))

    def ops_of(self, *names: str) -> Iterator[OpRecord]:
        """Operations filtered by syscall name."""
        wanted = set(names)
        return (op for op in self.operations if op.op in wanted)

    def sessions_of_user(self, user_id: int) -> list[SessionRecord]:
        """Sessions belonging to one virtual user."""
        return [s for s in self.sessions if s.user_id == user_id]

    @property
    def total_bytes(self) -> int:
        """Bytes moved by read+write calls."""
        return sum(op.size for op in self.data_ops())

    @property
    def total_response_us(self) -> float:
        """Summed response time across all

        file-access calls (think time excluded)."""
        return sum(op.response_us for op in self.operations)

    # -- persistence -----------------------------------------------------------

    _DUMP_CHUNK_LINES = 4096

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the log to a text stream.

        Lines are joined into multi-kilobyte chunks before writing: one
        ``write`` call per ~4k records instead of one per record keeps
        million-operation dumps out of the per-call overhead regime.
        """
        chunk: list[str] = []
        for record in itertools.chain(self.sessions, self.operations):
            chunk.append(record.to_line())
            if len(chunk) >= self._DUMP_CHUNK_LINES:
                stream.write("\n".join(chunk) + "\n")
                chunk.clear()
        if chunk:
            stream.write("\n".join(chunk) + "\n")

    def dumps(self) -> str:
        """Serialise to a string."""
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, stream: Iterable[str]) -> "UsageLog":
        """Read a log from lines (inverse of :meth:`dump`)."""
        log = cls()
        for line in stream:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("SESSION\t"):
                log.record_session(SessionRecord.from_line(line))
            elif line.startswith("OP\t"):
                log.record_op(OpRecord.from_line(line))
            else:
                raise ValueError(f"unrecognised log line: {line!r}")
        return log

    @classmethod
    def loads(cls, text: str) -> "UsageLog":
        """Parse from a string."""
        return cls.load(io.StringIO(text))
