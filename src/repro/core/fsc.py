"""The File System Creator (FSC).

Section 4.1.2: the FSC "builds a new file system according to the file
distributions for each file category", creating "a directory for system
files, and several directories, one for each virtual user", so that the
experiment never perturbs existing data.  Only files that may be accessed
are created.

Layout produced::

    /system            shared OTHER-owned files
    /notes             shared NOTES-owned files
    /user00, /user01…  one home per virtual user

USER-owned categories are spread round-robin across the user homes;
NEW/TEMP categories are also pre-populated (they existed in the measured
file system) although sessions create their own fresh files on top.
Directory-category "files" are real directories populated with enough
entries to match their sampled byte size at ~32 bytes per entry, so a
READDIR of a 714-byte directory costs what the characterization says it
should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol

import numpy as np

from ..distributions import RandomStreams
from ..vfs import FileSystemAPI
from .spec import FileCategory, Owner, WorkloadSpec

__all__ = ["FileSystemCreator", "FileSystemLayout", "CreatedFile"]

_DIR_ENTRY_BYTES = 32
_MAX_DIR_ENTRIES = 64


class _Sampler(Protocol):
    def sample(self, rng: np.random.Generator): ...


@dataclass(frozen=True)
class CreatedFile:
    """One file (or directory) the FSC materialised."""

    path: str
    category_key: str
    size: int
    owner_user: int | None  # None for shared files


@dataclass
class FileSystemLayout:
    """Manifest of the new file system the FSC built.

    The USIM selects files to access from this manifest; the analyzer uses
    the recorded sizes without re-statting.
    """

    n_users: int
    files: list[CreatedFile] = field(default_factory=list)
    _by_pool: dict[tuple[str, int | None], list[CreatedFile]] = field(
        default_factory=dict
    )
    _size_by_path: dict[str, int] = field(default_factory=dict)
    _pool_arrays: dict[tuple[str, int | None],
                       tuple[list[str], np.ndarray]] = field(
        default_factory=dict
    )

    def add(self, record: CreatedFile) -> None:
        """Index a created file."""
        self.files.append(record)
        pool = self._by_pool.setdefault(
            (record.category_key, record.owner_user), []
        )
        pool.append(record)
        self._size_by_path[record.path] = record.size
        self._pool_arrays.pop((record.category_key, record.owner_user), None)

    def user_home(self, user_id: int) -> str:
        """The home directory path of virtual user ``user_id``."""
        if not (0 <= user_id < self.n_users):
            raise ValueError(
                f"user_id {user_id} outside [0, {self.n_users})"
            )
        return f"/user{user_id:02d}"

    def files_for(self, category: FileCategory,
                  user_id: int) -> list[CreatedFile]:
        """Candidate files of ``category`` visible to ``user_id``.

        USER-owned categories resolve to the user's own files; shared
        categories resolve to the common pool.
        """
        if category.is_shared:
            return self._by_pool.get((category.key, None), [])
        return self._by_pool.get((category.key, user_id), [])

    def pool_arrays(self, category: FileCategory,
                    user_id: int) -> tuple[list[str], np.ndarray]:
        """``files_for`` as ``(paths, sizes)`` columns, cached per pool.

        The columnar plan builder indexes whole chosen-file subsets at
        once (``sizes[chosen]``) instead of touching one
        :class:`CreatedFile` attribute pair per plan.  The cache is
        invalidated whenever :meth:`add` grows the pool.
        """
        pool_key = (category.key, None if category.is_shared else user_id)
        cached = self._pool_arrays.get(pool_key)
        if cached is None:
            pool = self._by_pool.get(pool_key, [])
            cached = (
                [record.path for record in pool],
                np.array([record.size for record in pool], dtype=np.int64),
            )
            self._pool_arrays[pool_key] = cached
        return cached

    def size_of(self, path: str) -> int | None:
        """Recorded size of a created path (None for session-created files)."""
        return self._size_by_path.get(path)

    def count_by_category(self) -> dict[str, int]:
        """Number of created files per category key."""
        counts: dict[str, int] = {}
        for record in self.files:
            counts[record.category_key] = counts.get(record.category_key, 0) + 1
        return counts

    def mean_size_by_category(self) -> dict[str, float]:
        """Mean created size per category key (Table 5.1 check)."""
        sums: dict[str, list[float]] = {}
        for record in self.files:
            sums.setdefault(record.category_key, []).append(record.size)
        return {key: float(np.mean(vals)) for key, vals in sums.items()}

    @property
    def total_files(self) -> int:
        """Number of category files created (directory entries excluded)."""
        return len(self.files)


class FileSystemCreator:
    """Builds the initial file system from a workload specification."""

    def __init__(
        self,
        spec: WorkloadSpec,
        streams: RandomStreams | None = None,
        size_samplers: Mapping[str, _Sampler] | None = None,
    ):
        self.spec = spec
        self.streams = streams if streams is not None else RandomStreams(spec.seed)
        # Default samplers: the spec's parametric distributions.  The
        # generator facade passes GDS-built CDF tables instead, matching
        # the thesis's pipeline.
        if size_samplers is None:
            size_samplers = {
                cat_spec.category.key: cat_spec.size_distribution
                for cat_spec in spec.file_categories
            }
        self.size_samplers = dict(size_samplers)

    # -- apportionment -----------------------------------------------------------

    def category_file_counts(self) -> dict[str, int]:
        """Files per category by largest-remainder on Table 5.1 fractions."""
        specs = self.spec.file_categories
        fractions = np.array([fc.fraction_of_files for fc in specs])
        total_fraction = fractions.sum()
        if total_fraction <= 0:
            raise ValueError("category fractions sum to zero")
        quotas = fractions / total_fraction * self.spec.total_files
        counts = np.floor(quotas).astype(int)
        remainder_order = np.argsort(-(quotas - counts), kind="stable")
        for i in remainder_order[: self.spec.total_files - int(counts.sum())]:
            counts[i] += 1
        return {
            fc.category.key: int(count) for fc, count in zip(specs, counts)
        }

    # -- creation -------------------------------------------------------------------

    def create(self, fs: FileSystemAPI,
               materialize_users: "set[int] | None" = None,
               materialize_shared: bool = True) -> FileSystemLayout:
        """Materialise the new file system on ``fs`` and return the manifest.

        ``materialize_users`` restricts which *per-user* homes and files
        are physically created: shared (``/system``, ``/notes``) files are
        built whenever ``materialize_shared`` is true (the default), but
        USER-owned files are only written for the given user ids.  The
        engine-free fast backends pass ``materialize_shared=False`` as
        well — they never read the store, only the manifest.  The
        returned manifest always covers the **whole** population, and
        every size is sampled in the same order regardless — so a shard
        that materialises only its own users still computes a layout
        bit-identical to the full build.  This is what lets a fleet
        shard hold ~1/K of the file bytes while simulating 1/K of the
        users (see :mod:`repro.fleet`).
        """
        layout = FileSystemLayout(n_users=self.spec.n_users)
        fs.makedirs("/system")
        fs.makedirs("/notes")
        for user_id in range(self.spec.n_users):
            if materialize_users is None or user_id in materialize_users:
                fs.makedirs(layout.user_home(user_id))

        rng = self.streams.get("fsc")
        counts = self.category_file_counts()
        for cat_spec in self.spec.file_categories:
            category = cat_spec.category
            sampler = self.size_samplers[category.key]
            count = counts[category.key]
            if count == 0:
                continue
            # One vectorized draw per category: NumPy fills sequentially
            # from the bit stream, so the sizes equal per-file scalar
            # draws — and the FSC stream stays aligned across different
            # materialisation subsets, exactly as before.
            raw = np.asarray(sampler.sample(rng, size=count), dtype=float)
            if not np.isfinite(raw).all():
                # Match the old scalar path, which raised on int(NaN):
                # a non-finite file size is a broken size distribution,
                # not something to clamp silently into the manifest.
                raise ValueError(
                    f"file-size sampler for {category.key!r} produced "
                    "non-finite draws"
                )
            sizes = np.maximum(np.rint(raw), 0.0).astype(np.int64).tolist()
            for index in range(count):
                owner_user = self._owner_for(category, index)
                path = self._path_for(layout, category, owner_user, index)
                size = sizes[index]
                materialize = (
                    (materialize_users is None
                     or owner_user in materialize_users)
                    if owner_user is not None
                    else materialize_shared
                )
                if materialize:
                    if category.is_directory:
                        self._create_directory(fs, path, size)
                    else:
                        self._create_file(fs, path, size)
                layout.add(
                    CreatedFile(
                        path=path,
                        category_key=category.key,
                        size=size,
                        owner_user=owner_user,
                    )
                )
        return layout

    # -- helpers -----------------------------------------------------------------------

    def _owner_for(self, category: FileCategory, index: int) -> int | None:
        if category.is_shared:
            return None
        return index % self.spec.n_users

    def _path_for(
        self,
        layout: FileSystemLayout,
        category: FileCategory,
        owner_user: int | None,
        index: int,
    ) -> str:
        short = category.key.lower().replace(":", "-").replace("-rdonly", "")
        name = f"{short}-{index:05d}"
        if owner_user is not None:
            return f"{layout.user_home(owner_user)}/{name}"
        base = "/notes" if category.owner is Owner.NOTES else "/system"
        return f"{base}/{name}"

    @staticmethod
    def _create_file(fs: FileSystemAPI, path: str, size: int) -> None:
        fd = fs.creat(path)
        fs.close(fd)
        if size > 0:
            fs.truncate(path, size)

    @staticmethod
    def _create_directory(fs: FileSystemAPI, path: str, size: int) -> None:
        fs.makedirs(path)
        n_entries = min(
            _MAX_DIR_ENTRIES, max(1, round(size / _DIR_ENTRY_BYTES))
        )
        for entry in range(n_entries):
            fd = fs.creat(f"{path}/e{entry:03d}")
            fs.close(fd)
