"""The Usage Analyzer.

Section 5.1 mentions "a program, Usage Analyzer, for users to analyze the
results and display them graphically".  This module is that program: it
consumes a :class:`~repro.core.oplog.UsageLog` and produces

* the per-session usage measures of Figures 5.3–5.5 (average
  access-per-byte, average file size, average number of files referenced),
  as raw and smoothed histograms;
* the per-syscall access-size and response-time statistics of Table 5.3;
* the response-time-per-byte figure of merit used by Figures 5.6–5.12;
* a re-derived user characterization in the shape of Table 5.2, which
  closes the loop: feed the generator Table 5.2, measure the synthetic
  workload, and get Table 5.2 back (within sampling error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import Histogram, RunningStats
from .fsc import FileSystemLayout
from .oplog import UsageLog
from .plotting import render_histogram

__all__ = [
    "SessionMeasures",
    "CategoryCharacterization",
    "UsageAnalyzer",
]

_DATA_OPS = ("read", "write")
_REFERENCE_OPS = ("open", "creat", "stat")


@dataclass(frozen=True)
class SessionMeasures:
    """Per-session arrays of the three Figure 5.3–5.5 measures."""

    access_per_byte: np.ndarray
    mean_file_size: np.ndarray
    files_referenced: np.ndarray

    @property
    def n_sessions(self) -> int:
        """Number of sessions measured."""
        return len(self.access_per_byte)


@dataclass(frozen=True)
class CategoryCharacterization:
    """One re-derived Table 5.2 row."""

    category_key: str
    mean_accesses_per_byte: float
    mean_file_size: float
    mean_files: float
    percent_of_users: float
    sessions_accessing: int


class UsageAnalyzer:
    """Statistics over a usage log (optionally with the FSC manifest)."""

    def __init__(self, log: UsageLog, layout: FileSystemLayout | None = None):
        self.log = log
        self.layout = layout

    # -- session-level measures (Figures 5.3-5.5) ------------------------------

    def session_measures(self) -> SessionMeasures:
        """The three per-session usage measures, one entry per session."""
        sessions = self.log.sessions
        return SessionMeasures(
            access_per_byte=np.array(
                [s.access_per_byte for s in sessions], dtype=float
            ),
            mean_file_size=np.array(
                [s.mean_file_size for s in sessions], dtype=float
            ),
            files_referenced=np.array(
                [float(s.files_referenced) for s in sessions], dtype=float
            ),
        )

    def _histogram(self, values: np.ndarray, lo: float, hi: float,
                   n_bins: int) -> Histogram:
        hist = Histogram(lo, hi, n_bins)
        hist.add_many(values)
        return hist

    def histogram_access_per_byte(self, hi: float = 7.0,
                                  n_bins: int = 28) -> Histogram:
        """Figure 5.3's histogram (x axis 0..~7 accesses per byte)."""
        return self._histogram(self.session_measures().access_per_byte,
                               0.0, hi, n_bins)

    def histogram_file_size(self, hi: float = 60_000.0,
                            n_bins: int = 30) -> Histogram:
        """Figure 5.4's histogram (x axis 0..60 000 bytes)."""
        return self._histogram(self.session_measures().mean_file_size,
                               0.0, hi, n_bins)

    def histogram_files_referenced(self, hi: float = 100.0,
                                   n_bins: int = 25) -> Histogram:
        """Figure 5.5's histogram (x axis 0..100 files)."""
        return self._histogram(self.session_measures().files_referenced,
                               0.0, hi, n_bins)

    def render_measure_figure(self, which: str, window: int = 3) -> str:
        """ASCII rendition of Figure 5.3/5.4/5.5, before and after smoothing."""
        histograms = {
            "access_per_byte": (self.histogram_access_per_byte,
                                "Average access-per-byte"),
            "file_size": (self.histogram_file_size,
                          "Average file size (bytes)"),
            "files_referenced": (self.histogram_files_referenced,
                                 "Average number of files referenced"),
        }
        if which not in histograms:
            raise ValueError(
                f"which must be one of {sorted(histograms)}, got {which!r}"
            )
        build, title = histograms[which]
        hist = build()
        before = render_histogram(hist.centers, hist.counts,
                                  title=f"{title} (before smoothing)")
        after = render_histogram(hist.centers, hist.smoothed(window=window),
                                 title=f"{title} (after smoothing)")
        return before + "\n\n" + after

    # -- syscall-level statistics (Table 5.3) -----------------------------------

    def access_size_stats(self) -> RunningStats:
        """Mean/std of bytes moved per read/write call."""
        stats = RunningStats()
        stats.add_many(op.size for op in self.log.ops_of(*_DATA_OPS))
        return stats

    def response_time_stats(self, ops: tuple[str, ...] | None = None
                            ) -> RunningStats:
        """Mean/std of per-call response time (µs).

        By default covers every file-access call, as Table 5.3 does;
        restrict with ``ops=("read", "write")`` etc.
        """
        stats = RunningStats()
        if ops is None:
            records = self.log.operations
        else:
            records = list(self.log.ops_of(*ops))
        stats.add_many(op.response_us for op in records)
        return stats

    def response_per_byte(self) -> float:
        """Total data-op response time over total bytes moved (µs/byte).

        The figure of merit of Figures 5.6–5.12.
        """
        total_us = sum(op.response_us for op in self.log.ops_of(*_DATA_OPS))
        total_bytes = self.log.total_bytes
        if total_bytes <= 0:
            return 0.0
        return total_us / total_bytes

    # -- characterization (re-deriving Table 5.2) ----------------------------------

    def characterization(self) -> list[CategoryCharacterization]:
        """Per-category usage measures, averaged over accessing sessions."""
        # (session key, category) -> accumulators
        per_cell_bytes: dict[tuple[tuple[int, int], str], int] = {}
        per_cell_sizes: dict[tuple[tuple[int, int], str], dict[str, int]] = {}
        session_keys: set[tuple[int, int]] = set()

        for op in self.log.operations:
            if not op.category_key:
                continue
            session = (op.user_id, op.session_id)
            session_keys.add(session)
            cell = (session, op.category_key)
            if op.op in _DATA_OPS or op.op == "listdir":
                per_cell_bytes[cell] = per_cell_bytes.get(cell, 0) + op.size
            if op.op in _REFERENCE_OPS:
                sizes = per_cell_sizes.setdefault(cell, {})
                sizes.setdefault(op.path, 0)
            if op.op == "write":
                sizes = per_cell_sizes.setdefault(cell, {})
                sizes[op.path] = sizes.get(op.path, 0) + op.size

        # Resolve referenced-file sizes: FSC-recorded sizes are
        # authoritative for pre-existing files (a rewritten file's size is
        # its length, not the bytes written over it); session-created
        # files fall back to their accumulated write bytes.
        for (session, key), sizes in per_cell_sizes.items():
            for path in list(sizes):
                recorded = (self.layout.size_of(path)
                            if self.layout is not None else None)
                if recorded is not None:
                    sizes[path] = recorded

        categories = sorted({cell[1] for cell in per_cell_sizes}
                            | {cell[1] for cell in per_cell_bytes})
        n_sessions = max(len(session_keys), len(self.log.sessions), 1)
        out: list[CategoryCharacterization] = []
        for key in categories:
            ratios: list[float] = []
            file_sizes: list[float] = []
            file_counts: list[float] = []
            accessing = 0
            for session in session_keys:
                cell = (session, key)
                sizes = per_cell_sizes.get(cell)
                if not sizes:
                    continue
                accessing += 1
                total_size = sum(sizes.values())
                file_counts.append(float(len(sizes)))
                file_sizes.extend(float(v) for v in sizes.values())
                accessed = per_cell_bytes.get(cell, 0)
                if total_size > 0:
                    ratios.append(accessed / total_size)
            if accessing == 0:
                continue
            out.append(
                CategoryCharacterization(
                    category_key=key,
                    mean_accesses_per_byte=float(np.mean(ratios))
                    if ratios else 0.0,
                    mean_file_size=float(np.mean(file_sizes))
                    if file_sizes else 0.0,
                    mean_files=float(np.mean(file_counts))
                    if file_counts else 0.0,
                    percent_of_users=100.0 * accessing / n_sessions,
                    sessions_accessing=accessing,
                )
            )
        return out
