"""Trace characterization: from a usage log back to a workload spec.

Section 2.2: "Our method analyzes trace data to obtain the distributions
of resource usage of users and then uses the distributions during the
simulation phase."  This module is that first half.  Given a
:class:`~repro.core.oplog.UsageLog` (measured on a real system through
the RealRunner, or produced by any tool that writes the log format), it

1. extracts per-category samples of the Table 5.2 measures
   (accesses-per-byte, files referenced, file size) and the global
   access-size and think-time samples,
2. fits each with the GDS's families (or keeps the empirical
   distribution), and
3. assembles a :class:`~repro.core.spec.WorkloadSpec` ready to drive the
   generator.

Together with the generator this closes the thesis's loop: measure →
characterise → synthesise → measure, with the synthetic workload's
characterization converging to the original's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions import (
    Distribution,
    EmpiricalDistribution,
    ShiftedExponential,
    fit_best,
)
from .fsc import FileSystemLayout
from .oplog import UsageLog
from .spec import (
    FileCategory,
    FileCategorySpec,
    UsageSpec,
    UserTypeSpec,
    WorkloadSpec,
)

__all__ = [
    "CategorySamples",
    "extract_samples",
    "characterize_log",
    "fit_measure",
]

_DATA_OPS = ("read", "write")
_REFERENCE_OPS = ("open", "creat", "stat")
_MIN_FIT_SAMPLES = 8


@dataclass
class CategorySamples:
    """Raw per-category observations extracted from a log."""

    category_key: str
    accesses_per_byte: list[float]
    files_per_session: list[float]
    file_sizes: list[float]
    sessions_accessing: int

    def has_enough(self, minimum: int = _MIN_FIT_SAMPLES) -> bool:
        """True when every measure has at least ``minimum`` observations."""
        return (
            len(self.accesses_per_byte) >= minimum
            and len(self.files_per_session) >= minimum
            and len(self.file_sizes) >= minimum
        )


def extract_samples(
    log: UsageLog, layout: FileSystemLayout | None = None
) -> tuple[dict[str, CategorySamples], list[float], list[float]]:
    """Pull per-category measure samples plus access sizes out of a log.

    Returns ``(samples_by_category, access_sizes, inter_request_gaps)``.
    Inter-request gaps (think time plus service) are derived from
    consecutive operation start times within a session; they upper-bound
    think time, which is all a trace exposes without kernel help.
    """
    per_cell_bytes: dict[tuple[tuple[int, int], str], int] = {}
    per_cell_sizes: dict[tuple[tuple[int, int], str], dict[str, int]] = {}
    session_keys: set[tuple[int, int]] = set()
    access_sizes: list[float] = []
    op_starts: dict[tuple[int, int], list[float]] = {}

    for op in log.operations:
        session = (op.user_id, op.session_id)
        session_keys.add(session)
        op_starts.setdefault(session, []).append(op.start_us)
        if op.op in _DATA_OPS:
            access_sizes.append(float(op.size))
        if not op.category_key:
            continue
        cell = (session, op.category_key)
        if op.op in _DATA_OPS or op.op == "listdir":
            per_cell_bytes[cell] = per_cell_bytes.get(cell, 0) + op.size
        if op.op in _REFERENCE_OPS:
            per_cell_sizes.setdefault(cell, {}).setdefault(op.path, 0)
        if op.op == "write":
            sizes = per_cell_sizes.setdefault(cell, {})
            sizes[op.path] = sizes.get(op.path, 0) + op.size

    for (session, key), sizes in per_cell_sizes.items():
        for path in list(sizes):
            recorded = layout.size_of(path) if layout is not None else None
            if recorded is not None:
                sizes[path] = recorded

    categories = {cell[1] for cell in per_cell_sizes}
    out: dict[str, CategorySamples] = {}
    for key in sorted(categories):
        samples = CategorySamples(key, [], [], [], 0)
        for session in session_keys:
            cell = (session, key)
            sizes = per_cell_sizes.get(cell)
            if not sizes:
                continue
            samples.sessions_accessing += 1
            samples.files_per_session.append(float(len(sizes)))
            samples.file_sizes.extend(float(v) for v in sizes.values())
            total_size = sum(sizes.values())
            if total_size > 0:
                samples.accesses_per_byte.append(
                    per_cell_bytes.get(cell, 0) / total_size
                )
        out[key] = samples

    gaps: list[float] = []
    for starts in op_starts.values():
        ordered = sorted(starts)
        gaps.extend(
            b - a for a, b in zip(ordered, ordered[1:]) if b - a >= 0
        )
    return out, access_sizes, gaps


def _fit(samples: list[float], method: str) -> Distribution:
    data = np.asarray(samples, dtype=float)
    if method == "empirical":
        return EmpiricalDistribution(data)
    if method == "fit":
        if len(data) >= _MIN_FIT_SAMPLES and float(np.std(data)) > 0:
            try:
                return fit_best(data, max_phases=2).distribution
            # detlint: ignore[swallowed-exceptions] — degenerate fit: empirical fallback below
            except Exception:
                pass
        return EmpiricalDistribution(data)
    if method == "exponential":
        mean = max(float(np.mean(data)), 1e-9)
        return ShiftedExponential(mean)
    raise ValueError(
        f"method must be empirical|fit|exponential, got {method!r}"
    )


def fit_measure(samples: list[float], method: str = "fit") -> Distribution:
    """Fit one measure's samples the way :func:`characterize_log` does.

    Public entry point for callers (the trace-calibration pipeline) that
    need to re-fit a single measure — e.g. replacing the think-time
    distribution once per-call service times are known.
    """
    return _fit(samples, method)


def characterize_log(
    log: UsageLog,
    layout: FileSystemLayout | None = None,
    method: str = "fit",
    user_type_name: str = "characterized",
    total_files: int = 400,
    n_users: int = 1,
    seed: int = 0,
    min_sessions_per_category: int = 2,
) -> WorkloadSpec:
    """Build a :class:`WorkloadSpec` whose distributions fit the log.

    ``method`` selects how each measure's samples become a distribution:
    ``"fit"`` (GDS families via best-KS, falling back to empirical),
    ``"empirical"`` (bootstrap the observations), or ``"exponential"``
    (mean-matched, the thesis's section 5.1 simplification).
    """
    by_category, access_sizes, gaps = extract_samples(log, layout)
    n_sessions = max(len(log.sessions), 1)

    usage_specs: list[UsageSpec] = []
    weighted: list[tuple[FileCategory, Distribution, float]] = []
    for key, samples in sorted(by_category.items()):
        if samples.sessions_accessing < min_sessions_per_category:
            continue
        if not samples.has_enough(2):
            continue
        category = FileCategory.from_key(key)
        usage_specs.append(
            UsageSpec(
                category=category,
                access_per_byte=_fit(samples.accesses_per_byte, method),
                file_count=_fit(samples.files_per_session, method),
                file_size=_fit(samples.file_sizes, method),
                fraction_of_users=min(
                    1.0, samples.sessions_accessing / n_sessions
                ),
            )
        )
        weighted.append(
            (category, _fit(samples.file_sizes, method),
             float(len(samples.file_sizes)))
        )

    if not usage_specs:
        raise ValueError("log contains too little data to characterize")

    total_size_weight = sum(weight for _, _, weight in weighted)
    category_specs = [
        FileCategorySpec(
            category=category,
            size_distribution=dist,
            fraction_of_files=weight / total_size_weight,
        )
        for category, dist, weight in weighted
    ]

    access_size = (
        _fit(access_sizes, method) if len(access_sizes) >= 2
        else ShiftedExponential(1024.0)
    )
    think_time = (
        _fit(gaps, method) if len(gaps) >= 2
        else ShiftedExponential(5000.0)
    )
    user_type = UserTypeSpec(
        name=user_type_name,
        fraction=1.0,
        usage=tuple(usage_specs),
        think_time=think_time,
        access_size=access_size,
    )
    return WorkloadSpec(
        file_categories=tuple(category_specs),
        user_types=(user_type,),
        total_files=total_files,
        n_users=n_users,
        seed=seed,
    )
