"""Workload-spec serialisation: :class:`WorkloadSpec` ⇄ JSON.

A calibrated spec (the output of ``repro trace calibrate``) must be a
shareable artefact: written to disk, diffed, loaded back, registered as a
scenario, validated against its source trace.  This module defines that
interchange form.

The document layout::

    {
      "format": "repro.workload-spec",
      "version": 1,
      "total_files": 400, "n_users": 8, "seed": 0,
      "file_categories": [
        {"category": "REG:USER:RDONLY", "fraction_of_files": 0.3,
         "size_distribution": {"kind": "shifted-exponential", ...}}, ...
      ],
      "user_types": [
        {"name": "calibrated", "fraction": 1.0, "max_open_files": 8,
         "think_time": {...}, "access_size": {...},
         "usage": [{"category": ..., "fraction_of_users": ...,
                    "access_per_byte": {...}, "file_count": {...},
                    "file_size": {...}}, ...]}, ...
      ],
      "meta": {...},  # free-form provenance (source trace, method, ...)
      "arrivals": {   # optional temporal-load model (see repro.core.arrivals)
        "first_login": {...}, "session_gap": {...}, "profile": {...}|null
      }
    }

Distribution payloads use :mod:`repro.distributions.serialize`; every
family a spec can hold round-trips to an equal object, so
``spec_from_jsonable(spec_to_jsonable(spec)) == spec``.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from ..distributions import DistributionError, from_jsonable, to_jsonable
from .arrivals import (
    ArrivalError,
    ArrivalModel,
    arrival_model_from_jsonable,
    arrival_model_to_jsonable,
)
from .spec import (
    FileCategory,
    FileCategorySpec,
    SpecError,
    UsageSpec,
    UserTypeSpec,
    WorkloadSpec,
)

__all__ = [
    "SPEC_FORMAT",
    "SPEC_VERSION",
    "spec_to_jsonable",
    "spec_from_jsonable",
    "dump_spec",
    "dumps_spec",
    "load_spec",
    "loads_spec",
    "parse_spec_document",
    "spec_meta",
    "spec_arrivals",
]

SPEC_FORMAT = "repro.workload-spec"
SPEC_VERSION = 1


def spec_to_jsonable(
    spec: WorkloadSpec,
    meta: dict | None = None,
    arrivals: "ArrivalModel | None" = None,
) -> dict[str, Any]:
    """Encode ``spec`` (plus optional provenance ``meta`` and an optional
    temporal-load ``arrivals`` block) as a JSON-able dict."""
    document = {
        "format": SPEC_FORMAT,
        "version": SPEC_VERSION,
        "total_files": spec.total_files,
        "n_users": spec.n_users,
        "seed": spec.seed,
        "file_categories": [
            {
                "category": fc.category.key,
                "fraction_of_files": fc.fraction_of_files,
                "size_distribution": to_jsonable(fc.size_distribution),
            }
            for fc in spec.file_categories
        ],
        "user_types": [
            {
                "name": ut.name,
                "fraction": ut.fraction,
                "max_open_files": ut.max_open_files,
                "think_time": to_jsonable(ut.think_time),
                "access_size": to_jsonable(ut.access_size),
                "usage": [
                    {
                        "category": u.category.key,
                        "fraction_of_users": u.fraction_of_users,
                        "access_per_byte": to_jsonable(u.access_per_byte),
                        "file_count": to_jsonable(u.file_count),
                        "file_size": to_jsonable(u.file_size),
                    }
                    for u in ut.usage
                ],
            }
            for ut in spec.user_types
        ],
        "meta": dict(meta or {}),
    }
    if arrivals is not None:
        document["arrivals"] = arrival_model_to_jsonable(arrivals)
    return document


def _require(payload: dict, key: str, context: str):
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise SpecError(f"spec JSON: {context} is missing {key!r}") from None


def spec_from_jsonable(payload: dict[str, Any]) -> WorkloadSpec:
    """Decode a dict produced by :func:`spec_to_jsonable`.

    Raises :class:`~repro.core.spec.SpecError` for structurally invalid
    documents and lets the spec dataclasses enforce semantic validity
    (fractions summing to one, non-empty usage, ...).
    """
    if not isinstance(payload, dict):
        raise SpecError(f"spec JSON: expected an object, got {type(payload).__name__}")
    fmt = payload.get("format", SPEC_FORMAT)
    if fmt != SPEC_FORMAT:
        raise SpecError(f"spec JSON: unknown format {fmt!r} (expected {SPEC_FORMAT!r})")
    version = payload.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(f"spec JSON: unsupported version {version!r}")

    try:
        categories = tuple(
            FileCategorySpec(
                category=FileCategory.from_key(_require(fc, "category", "file category")),
                size_distribution=from_jsonable(
                    _require(fc, "size_distribution", "file category")
                ),
                fraction_of_files=float(_require(fc, "fraction_of_files", "file category")),
            )
            for fc in _require(payload, "file_categories", "document")
        )
        user_types = tuple(
            UserTypeSpec(
                name=str(_require(ut, "name", "user type")),
                fraction=float(_require(ut, "fraction", "user type")),
                max_open_files=int(ut.get("max_open_files", 8)),
                think_time=from_jsonable(_require(ut, "think_time", "user type")),
                access_size=from_jsonable(_require(ut, "access_size", "user type")),
                usage=tuple(
                    UsageSpec(
                        category=FileCategory.from_key(_require(u, "category", "usage")),
                        fraction_of_users=float(_require(u, "fraction_of_users", "usage")),
                        access_per_byte=from_jsonable(_require(u, "access_per_byte", "usage")),
                        file_count=from_jsonable(_require(u, "file_count", "usage")),
                        file_size=from_jsonable(_require(u, "file_size", "usage")),
                    )
                    for u in _require(ut, "usage", "user type")
                ),
            )
            for ut in _require(payload, "user_types", "document")
        )
    except SpecError:
        raise
    except DistributionError as exc:
        raise SpecError(f"spec JSON: bad distribution payload: {exc}") from exc
    except (TypeError, ValueError, AttributeError) as exc:
        # Wrong-shaped payloads (lists where objects belong, non-numeric
        # fractions, ...) must surface as the documented SpecError, not
        # leak implementation exceptions to CLI error handling.
        raise SpecError(f"spec JSON: malformed document: {exc}") from exc
    return WorkloadSpec(
        file_categories=categories,
        user_types=user_types,
        total_files=int(payload.get("total_files", 400)),
        n_users=int(payload.get("n_users", 1)),
        seed=int(payload.get("seed", 0)),
    )


def spec_meta(payload: dict[str, Any]) -> dict:
    """The free-form ``meta`` block of a spec document (may be empty)."""
    meta = payload.get("meta", {}) if isinstance(payload, dict) else {}
    return meta if isinstance(meta, dict) else {}


def spec_arrivals(payload: dict[str, Any]) -> "ArrivalModel | None":
    """The optional ``arrivals`` block, decoded (None when absent)."""
    block = payload.get("arrivals") if isinstance(payload, dict) else None
    if not block:
        return None
    try:
        return arrival_model_from_jsonable(block)
    except (ArrivalError, DistributionError) as exc:
        raise SpecError(f"spec JSON: bad arrivals block: {exc}") from exc


def dumps_spec(
    spec: WorkloadSpec,
    meta: dict | None = None,
    indent: int = 2,
    arrivals: "ArrivalModel | None" = None,
) -> str:
    """Serialise to a JSON string."""
    return json.dumps(spec_to_jsonable(spec, meta, arrivals=arrivals),
                      indent=indent, sort_keys=True)


def dump_spec(
    spec: WorkloadSpec,
    stream: TextIO,
    meta: dict | None = None,
    arrivals: "ArrivalModel | None" = None,
) -> None:
    """Write the JSON document to a text stream."""
    stream.write(dumps_spec(spec, meta, arrivals=arrivals) + "\n")


def parse_spec_document(text: str) -> Any:
    """JSON-parse a spec document, wrapping parse errors in
    :class:`~repro.core.spec.SpecError`.

    The single entry point for turning artefact text into a payload:
    callers that need more than ``(spec, meta)`` — e.g. the scenario
    registry, which also decodes the ``arrivals`` block — parse once
    here and feed the payload to :func:`spec_from_jsonable` /
    :func:`spec_meta` / :func:`spec_arrivals`.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec JSON: not valid JSON: {exc}") from exc


def loads_spec(text: str) -> tuple[WorkloadSpec, dict]:
    """Parse a JSON string; returns ``(spec, meta)``."""
    payload = parse_spec_document(text)
    return spec_from_jsonable(payload), spec_meta(payload)


def load_spec(stream: TextIO) -> tuple[WorkloadSpec, dict]:
    """Read a JSON document from a text stream; returns ``(spec, meta)``."""
    return loads_spec(stream.read())
