"""On-disk op-stream artifacts — the run as a durable, re-readable file.

Every in-memory path so far (``UsageLog``, ``WorkloadTally``) either
stores the whole run or only its statistics.  At the ROADMAP's
million-user scale neither is enough: downstream consumers need the
*operation stream itself* — LWS-style log-driven replay wants the exact
ops, not a regeneration — and the machine generating it cannot hold it.
``repro.core.streamfile`` makes the op stream a file:

* :class:`StreamFileSink` is an :class:`~repro.core.oplog.OpSink` that
  spills :class:`~repro.core.opbatch.OpBatch` chunks to disk under a
  bounded ``memory_budget_bytes`` instead of accumulating;
* :class:`StreamReader` / :func:`iter_batches` stream the artifact back
  as batches, with a footer index for seeking and slicing by user id or
  time window without touching unrelated chunks;
* :meth:`StreamReader.replay` feeds a sink (tally, usage log, another
  stream file) straight from disk — the fast-columnar consumption path
  without regeneration;
* :func:`merge_stream_files` interleaves per-shard artifacts into one
  file **bit-identical** to the artifact a 1-shard run would have
  written.

File layout (all integers little-endian)::

    MAGIC  u16 version
    u32 len  u32 crc32  header-JSON          (schema, rows/chunk, metadata)
    'C' u64 len  u32 crc32  chunk payload    (repeated)
    'F' u64 len  u32 crc32  footer-JSON      (per-chunk seek index)
    u64 footer-offset  MAGIC                 (fixed-size tail)

Chunk payloads hold per-chunk *compacted* string tables (first-use
order) followed by one npy-framed block per column, then the session
records that ended inside the chunk, each tagged with its global op-row
position so the exact event order (ops interleaved with session
summaries) reconstructs on replay.

Determinism is the load-bearing property.  Chunk boundaries are a pure
function of the global op-row count (``rows_per_chunk`` rows each,
derived from the byte budget via the fixed :data:`ROW_BYTES`), never of
arrival granularity — so re-chunking the same event stream, whether it
comes from one run, a replay, or a k-way shard merge, reproduces the
same frames byte for byte.  Every frame is CRC-checked; any truncation
or bit flip surfaces as :class:`StreamFormatError`, never as garbage
records.

Versioning: ``FORMAT_VERSION`` bumps on any layout change; readers
reject newer versions loudly.  See ``docs/architecture.md`` for the
format's rationale and evolution rules.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .opbatch import OP_KIND_NAMES, OpBatch, StringTable
from .oplog import OpRecord, SessionRecord

__all__ = [
    "FORMAT_VERSION",
    "STREAM_FORMAT_VERSION",
    "ROW_BYTES",
    "DEFAULT_MEMORY_BUDGET",
    "CHECKPOINT_SUFFIX",
    "StreamFormatError",
    "rows_per_chunk_for",
    "TeeSink",
    "StreamWriter",
    "StreamFileSink",
    "ChunkInfo",
    "StreamChunk",
    "StreamReader",
    "iter_batches",
    "merge_stream_files",
    "SalvagedStream",
    "salvage_stream",
    "resume_stream_sink",
    "StreamVerifyReport",
    "verify_stream",
]

MAGIC = b"REPRO-OPSTREAM\x00"
FORMAT_VERSION = 1
STREAM_FORMAT_VERSION = FORMAT_VERSION  # package-level alias

# Column schema, in serialisation order.  The chunk payload stores one
# npy block per entry; ``think_us`` is optional per chunk (synthesis
# batches carry it, scalar record bridges do not).
_COLUMNS: tuple[tuple[str, str], ...] = (
    ("kinds", "int8"),
    ("plan_ids", "int64"),
    ("sizes", "int64"),
    ("flags", "int16"),
    ("path_idx", "int32"),
    ("category_idx", "int32"),
    ("user_ids", "int64"),
    ("session_ids", "int64"),
    ("user_type_idx", "int32"),
    ("start_us", "float64"),
    ("response_us", "float64"),
)
_THINK_COLUMN = ("think_us", "int64")

ROW_BYTES = sum(np.dtype(d).itemsize for _, d in _COLUMNS) + np.dtype(
    _THINK_COLUMN[1]
).itemsize
"""Fixed bytes per op row (every column incl. the optional think one).

The budget → ``rows_per_chunk`` conversion goes through this constant
rather than the actual buffered column widths so that chunk boundaries —
and therefore the artifact's bytes — depend only on the budget, never on
which optional columns a particular run happened to carry.
"""

DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024
"""Default :class:`StreamFileSink` buffer budget: 64 MiB of column data."""

_FRAME_CHUNK = b"C"
_FRAME_FOOTER = b"F"
_HEAD_FMT = "<LL"  # frame length, crc32 (header frame)
_FRAME_FMT = "<cQL"  # frame type, payload length, crc32
_TAIL_FMT = "<Q"  # footer frame offset (followed by MAGIC)
_TAIL_BYTES = struct.calcsize(_TAIL_FMT) + len(MAGIC)

CHECKPOINT_SUFFIX = ".progress"
"""Sidecar suffix of a checkpointing writer's progress record.

The sidecar is a small JSON document rewritten atomically
(tmp + ``os.replace``) after every chunk flush: it names the chunks
already durable in the main file so :func:`salvage_stream` can verify
exactly those frames after a crash instead of scanning blind.  It is
advisory — salvage falls back to a sequential CRC walk whenever the
sidecar is missing, stale, or disagrees with the data file — and it is
deleted when the artifact closes cleanly (a complete file carries its
own footer index).
"""
CHECKPOINT_FORMAT = "repro.opstream-progress"
CHECKPOINT_VERSION = 1


class StreamFormatError(ValueError):
    """A stream file is truncated, corrupt, or not a stream file at all."""


def rows_per_chunk_for(memory_budget_bytes: int) -> int:
    """Rows per chunk under ``memory_budget_bytes`` (at least one)."""
    if memory_budget_bytes < 1:
        raise ValueError(
            f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}"
        )
    return max(1, int(memory_budget_bytes) // ROW_BYTES)


# ---------------------------------------------------------------------------
# Batch concatenation and per-chunk table compaction
# ---------------------------------------------------------------------------


def _remap_indices(idx: np.ndarray, source: StringTable,
                   target: StringTable) -> np.ndarray:
    """Re-intern ``idx`` (indices into ``source``) into ``target``.

    Only the values actually used are interned, so a slice sharing a
    large long-lived table costs O(distinct values used), not O(table).
    """
    used = np.unique(idx[idx >= 0])
    if used.size == 0:
        return idx.astype(np.int32, copy=True)
    values = source.values()
    lut = np.full(int(used[-1]) + 1, -1, dtype=np.int32)
    for i in used:
        lut[int(i)] = target.intern(values[int(i)])
    out = lut[np.maximum(idx, 0)]
    out[idx < 0] = -1
    return out


def concat_batches(batches: Iterable[OpBatch]) -> OpBatch:
    """Concatenate batches into one, re-interning the string tables.

    The ``think_us`` column survives only when *every* input carries it
    (a record batch without thinks has no pause information to invent).
    An empty input list yields a well-typed empty batch.
    """
    batches = [b for b in batches if len(b)]
    if not batches:
        return OpBatch.empty(0)
    if len(batches) == 1:
        return batches[0]
    total = sum(len(b) for b in batches)
    out = OpBatch.empty(total)
    keep_think = all(b.think_us is not None for b in batches)
    if keep_think:
        out.think_us = np.empty(total, dtype=np.int64)
    pos = 0
    for b in batches:
        n = len(b)
        part = slice(pos, pos + n)
        out.kinds[part] = b.kinds
        out.plan_ids[part] = b.plan_ids
        out.sizes[part] = b.sizes
        out.flags[part] = b.flags
        out.user_ids[part] = b.user_ids
        out.session_ids[part] = b.session_ids
        out.start_us[part] = b.start_us
        out.response_us[part] = b.response_us
        out.path_idx[part] = _remap_indices(b.path_idx, b.paths, out.paths)
        out.category_idx[part] = _remap_indices(
            b.category_idx, b.categories, out.categories)
        out.user_type_idx[part] = _remap_indices(
            b.user_type_idx, b.user_types, out.user_types)
        if keep_think:
            out.think_us[part] = b.think_us
        pos += n
    return out


def _compact_column(idx: np.ndarray, table: StringTable):
    """Compact one string column for serialisation.

    Returns ``(new_idx, values)`` where ``values`` holds only the
    strings the column references, ordered by first occurrence in row
    order — a pure function of the rows, so identical rows always
    serialise to identical bytes regardless of the table they shared in
    memory.
    """
    used = idx[idx >= 0]
    if used.size == 0:
        return idx.astype(np.int32, copy=False), []
    uniq, first = np.unique(used, return_index=True)
    order = np.argsort(first, kind="stable")
    ordered = uniq[order]
    lut = np.full(int(uniq[-1]) + 1, -1, dtype=np.int32)
    lut[ordered] = np.arange(len(ordered), dtype=np.int32)
    new_idx = lut[np.maximum(idx, 0)]
    new_idx[idx < 0] = -1
    values = table.values()
    return new_idx, [values[int(i)] for i in ordered]


# ---------------------------------------------------------------------------
# Chunk payload encode/decode
# ---------------------------------------------------------------------------


def _write_table(out: io.BytesIO, values: list[str]) -> None:
    out.write(struct.pack("<L", len(values)))
    for value in values:
        raw = value.encode("utf-8")
        out.write(struct.pack("<L", len(raw)))
        out.write(raw)


def _write_array(out: io.BytesIO, array: np.ndarray) -> None:
    block = io.BytesIO()
    np.save(block, array, allow_pickle=False)
    raw = block.getvalue()
    out.write(struct.pack("<Q", len(raw)))
    out.write(raw)


def _encode_chunk(batch: OpBatch,
                  sessions: list[tuple[int, SessionRecord]]) -> bytes:
    out = io.BytesIO()
    has_think = batch.think_us is not None
    out.write(struct.pack("<QB", len(batch), int(has_think)))
    compacted = {}
    for idx_name, table_name in (("path_idx", "paths"),
                                 ("category_idx", "categories"),
                                 ("user_type_idx", "user_types")):
        new_idx, values = _compact_column(
            getattr(batch, idx_name), getattr(batch, table_name))
        compacted[idx_name] = new_idx
        _write_table(out, values)
    for name, dtype in _COLUMNS:
        column = compacted.get(name, None)
        if column is None:
            column = getattr(batch, name)
        _write_array(out, np.ascontiguousarray(column, dtype=np.dtype(dtype)))
    if has_think:
        _write_array(out, np.ascontiguousarray(
            batch.think_us, dtype=np.int64))
    out.write(struct.pack("<L", len(sessions)))
    for position, record in sessions:
        raw = record.to_line().encode("utf-8")
        out.write(struct.pack("<QL", position, len(raw)))
        out.write(raw)
    return out.getvalue()


class _PayloadReader:
    """Bounds-checked cursor over one decoded frame payload."""

    def __init__(self, payload: bytes, what: str):
        self._data = payload
        self._pos = 0
        self._what = what

    def take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise StreamFormatError(
                f"{self._what}: truncated payload "
                f"(wanted {n} bytes at offset {self._pos})"
            )
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def unpack(self, fmt: str):
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def done(self) -> None:
        if self._pos != len(self._data):
            raise StreamFormatError(
                f"{self._what}: {len(self._data) - self._pos} trailing bytes"
            )


def _read_table(cursor: _PayloadReader) -> StringTable:
    (count,) = cursor.unpack("<L")
    values = []
    for _ in range(count):
        (nbytes,) = cursor.unpack("<L")
        try:
            values.append(cursor.take(nbytes).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise StreamFormatError(f"corrupt string table: {exc}") from None
    return StringTable(values)


def _read_array(cursor: _PayloadReader, name: str, dtype: str,
                n: int) -> np.ndarray:
    (nbytes,) = cursor.unpack("<Q")
    raw = cursor.take(nbytes)
    try:
        array = np.load(io.BytesIO(raw), allow_pickle=False)
    except Exception as exc:
        raise StreamFormatError(
            f"column {name!r}: corrupt npy block ({exc})"
        ) from None
    if array.dtype != np.dtype(dtype) or array.shape != (n,):
        raise StreamFormatError(
            f"column {name!r}: expected {n} x {dtype}, "
            f"got {array.shape} x {array.dtype}"
        )
    return array


def _decode_chunk(payload: bytes, what: str):
    cursor = _PayloadReader(payload, what)
    n, has_think = cursor.unpack("<QB")
    if has_think not in (0, 1):
        raise StreamFormatError(f"{what}: bad think flag {has_think}")
    tables = [_read_table(cursor) for _ in range(3)]
    batch = OpBatch.empty(int(n), paths=tables[0], categories=tables[1],
                          user_types=tables[2])
    for name, dtype in _COLUMNS:
        setattr(batch, name, _read_array(cursor, name, dtype, int(n)))
    if has_think:
        batch.think_us = _read_array(cursor, *_THINK_COLUMN, int(n))
    for idx_name, table in (("path_idx", tables[0]),
                            ("category_idx", tables[1]),
                            ("user_type_idx", tables[2])):
        idx = getattr(batch, idx_name)
        if len(idx) and (int(idx.min()) < -1 or int(idx.max()) >= len(table)):
            raise StreamFormatError(f"{what}: {idx_name} out of table range")
    (n_sessions,) = cursor.unpack("<L")
    sessions = []
    for _ in range(n_sessions):
        position, nbytes = cursor.unpack("<QL")
        raw = cursor.take(nbytes)
        try:
            record = SessionRecord.from_line(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise StreamFormatError(
                f"{what}: corrupt session record ({exc})"
            ) from None
        sessions.append((int(position), record))
    cursor.done()
    return batch, sessions


# ---------------------------------------------------------------------------
# Header parsing (shared by the reader, salvage, and verification)
# ---------------------------------------------------------------------------


def _parse_header(stream, size: int, path: str) -> tuple[int, dict, int]:
    """Validate and decode the header at the start of ``stream``.

    Returns ``(version, header, data_start)`` where ``data_start`` is
    the offset of the first frame.  Raises :class:`StreamFormatError`
    on any structural problem, exactly like :class:`StreamReader`.
    """

    def must_read(n: int, what: str) -> bytes:
        if n < 0 or n > size:
            raise StreamFormatError(f"truncated stream file: {what}")
        raw = stream.read(n)
        if len(raw) != n:
            raise StreamFormatError(f"truncated stream file: {what}")
        return raw

    stream.seek(0)
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise StreamFormatError(
            f"{path!r} is not an op-stream file (bad magic)"
        )
    (version,) = struct.unpack("<H", must_read(2, "version"))
    if version > FORMAT_VERSION:
        raise StreamFormatError(
            f"stream format version {version} is newer than this "
            f"reader (supports <= {FORMAT_VERSION})"
        )
    length, crc = struct.unpack(
        _HEAD_FMT, must_read(struct.calcsize(_HEAD_FMT), "header"))
    raw = must_read(length, "header JSON")
    if zlib.crc32(raw) != crc:
        raise StreamFormatError("header failed its checksum")
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise StreamFormatError(f"corrupt header JSON: {exc}") from None
    if int(header.get("version", -1)) != version:
        raise StreamFormatError(
            f"header version {header.get('version')!r} disagrees with "
            f"the file's version field {version} (corrupt header?)"
        )
    if tuple(header.get("kinds", ())) != OP_KIND_NAMES:
        raise StreamFormatError(
            "stream file kind table does not match this build: "
            f"{tuple(header.get('kinds', ()))!r}"
        )
    if [tuple(c) for c in header.get("columns", [])] != list(_COLUMNS):
        raise StreamFormatError("stream file column schema mismatch")
    return version, header, stream.tell()


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class StreamWriter:
    """Low-level append writer: events in, canonical chunks out.

    Feed it the run's event stream (:meth:`add_batch` op rows,
    :meth:`add_session` summaries, in arrival order) and it emits frames
    of exactly ``rows_per_chunk`` rows each (the final one shorter), with
    every session attached to the chunk containing the op row it
    followed.  Chunk *i* is flushed only once a row of chunk *i + 1*
    arrives, so a summary landing exactly on a boundary still joins its
    own chunk — the buffered high-water mark is ``rows_per_chunk`` rows
    plus the incoming batch.
    """

    def __init__(self, path: str, rows_per_chunk: int,
                 metadata: dict | None = None, observer=None,
                 checkpoint: bool = False, flush_hook=None):
        if rows_per_chunk < 1:
            raise ValueError(
                f"rows_per_chunk must be >= 1, got {rows_per_chunk}"
            )
        self.path = path
        self.rows_per_chunk = int(rows_per_chunk)
        self.metadata = dict(metadata or {})
        # Spill accounting: an enabled observer charges each chunk flush
        # to the "spill" stage and ticks stream.{chunks,rows,bytes}.
        # Flush timing/counting never changes what is written — chunk
        # boundaries stay a pure function of the global row count.
        self._observer = (observer if observer is not None
                          and getattr(observer, "enabled", False) else None)
        # ``checkpoint`` makes every chunk flush durable (file flush +
        # atomic sidecar rewrite) so a crashed run can salvage the
        # prefix; ``flush_hook(chunk_index)`` runs before each flush —
        # the fault-injection seam for spill-path errors (ENOSPC).
        # Neither changes a single byte of the artifact itself.
        self._checkpoint = bool(checkpoint)
        self._flush_hook = flush_hook
        self._pieces: list[OpBatch] = []
        self._buffered = 0
        self._rows_done = 0
        self._sessions: list[tuple[int, SessionRecord]] = []
        self._sessions_done = 0
        self._index: list[dict] = []
        self._closed = False
        self.chunks_written = 0
        self._stream = open(path, "wb")
        try:
            self._write_header()
        except BaseException:
            self._stream.close()
            raise

    @classmethod
    def resume(cls, salvaged: "SalvagedStream",
               metadata: dict | None = None, observer=None,
               checkpoint: bool = False, flush_hook=None) -> "StreamWriter":
        """Continue writing a crashed artifact from its salvaged prefix.

        The file is truncated to the end of the last intact chunk and
        the writer picks up with the salvaged row/session/chunk counts,
        so the frames it appends are exactly the frames the original
        writer would have written next — chunk boundaries are a pure
        function of the global row count.  The caller must feed the
        *remaining* event stream (everything after the salvaged rows)
        in the original order.

        ``metadata`` must match the salvaged header's (the header is
        already on disk and is not rewritten); a mismatch means the
        resume does not describe the same run and is rejected.
        """
        if salvaged.complete:
            raise StreamFormatError(
                f"{salvaged.path}: artifact is complete; nothing to resume"
            )
        if metadata is not None and dict(metadata) != salvaged.metadata:
            raise StreamFormatError(
                f"{salvaged.path}: resume metadata does not match the "
                "on-disk header"
            )
        writer = cls.__new__(cls)
        writer.path = salvaged.path
        writer.rows_per_chunk = int(salvaged.rows_per_chunk)
        writer.metadata = dict(salvaged.metadata)
        writer._observer = (observer if observer is not None
                            and getattr(observer, "enabled", False) else None)
        writer._checkpoint = bool(checkpoint)
        writer._flush_hook = flush_hook
        writer._pieces = []
        writer._buffered = 0
        writer._rows_done = salvaged.rows
        writer._sessions = []
        writer._sessions_done = salvaged.sessions
        writer._index = [dict(entry) for entry in salvaged.index]
        writer._closed = False
        writer.chunks_written = len(salvaged.index)
        writer._stream = open(salvaged.path, "r+b")
        try:
            writer._stream.truncate(salvaged.data_end)
            writer._stream.seek(salvaged.data_end)
        except BaseException:
            writer._stream.close()
            raise
        return writer

    # -- events ---------------------------------------------------------------

    @property
    def buffered_rows(self) -> int:
        """Op rows currently held in memory (pending the next flush)."""
        return self._buffered

    def add_batch(self, batch: OpBatch) -> None:
        """Append op rows (sliced views are fine; tables may be shared)."""
        if len(batch) == 0:
            return
        self._pieces.append(batch)
        self._buffered += len(batch)
        while self._buffered > self.rows_per_chunk:
            self._flush_chunk(self.rows_per_chunk)

    def add_session(self, record: SessionRecord) -> None:
        """Append a session summary at the current op-row position."""
        self._sessions.append((self._rows_done + self._buffered, record))

    def close(self) -> None:
        """Flush the tail chunk, write the footer index, close the file."""
        if self._closed:
            return
        try:
            while self._buffered > self.rows_per_chunk:
                self._flush_chunk(self.rows_per_chunk)
            if self._buffered or self._sessions:
                self._flush_chunk(self._buffered)
            self._write_footer()
            if self._checkpoint:
                # A complete artifact carries its own footer index; the
                # sidecar would only go stale from here.
                with contextlib.suppress(OSError):
                    os.unlink(self.path + CHECKPOINT_SUFFIX)
        finally:
            self._closed = True
            self._stream.close()

    def abort(self) -> None:
        """Stop writing WITHOUT a footer (crash/failure path).

        Buffered rows are dropped; chunks already flushed stay on disk
        for :func:`salvage_stream`.  A footer must never cover a partial
        run — it would make the truncated artifact indistinguishable
        from a complete one and poison both resume and verification.
        Idempotent, and a no-op after :meth:`close`.
        """
        if self._closed:
            return
        self._closed = True
        self._stream.close()

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framing --------------------------------------------------------------

    def _write_header(self) -> None:
        header = json.dumps(
            {
                "version": FORMAT_VERSION,
                "kinds": list(OP_KIND_NAMES),
                "columns": [list(c) for c in _COLUMNS],
                "think_column": list(_THINK_COLUMN),
                "rows_per_chunk": self.rows_per_chunk,
                "metadata": self.metadata,
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self._stream.write(MAGIC)
        self._stream.write(struct.pack("<H", FORMAT_VERSION))
        self._stream.write(struct.pack(_HEAD_FMT, len(header),
                                       zlib.crc32(header)))
        self._stream.write(header)

    def _take_rows(self, n: int) -> OpBatch:
        taken: list[OpBatch] = []
        while n > 0:
            piece = self._pieces[0]
            if len(piece) <= n:
                taken.append(self._pieces.pop(0))
                n -= len(piece)
            else:
                taken.append(piece.select(slice(0, n)))
                self._pieces[0] = piece.select(slice(n, len(piece)))
                n = 0
        return concat_batches(taken)

    def _flush_chunk(self, take: int) -> None:
        if self._flush_hook is not None:
            self._flush_hook(self.chunks_written)
        if self._observer is not None:
            # detlint: ignore[no-wall-clock] — observer-only spill span; never touches the stream
            wall0 = time.perf_counter()
            cpu0 = time.process_time()  # detlint: ignore[no-wall-clock] — observer-only spill span
        rows = self._take_rows(take)
        boundary = self._rows_done + take
        cut = 0
        while (cut < len(self._sessions)
               and self._sessions[cut][0] <= boundary):
            cut += 1
        sessions, self._sessions = self._sessions[:cut], self._sessions[cut:]
        payload = _encode_chunk(rows, sessions)
        offset = self._stream.tell()
        self._stream.write(struct.pack(_FRAME_FMT, _FRAME_CHUNK,
                                       len(payload), zlib.crc32(payload)))
        self._stream.write(payload)
        if self._observer is not None:
            framed = len(payload) + struct.calcsize(_FRAME_FMT)
            metrics = self._observer.metrics
            metrics.counter("stream.chunks").inc()
            metrics.counter("stream.rows").inc(take)
            metrics.counter("stream.bytes").inc(framed)
            self._observer.stage_times("spill").add(
                # detlint: ignore[no-wall-clock] — observer-only spill span
                time.perf_counter() - wall0, time.process_time() - cpu0,
                rows=take, nbytes=framed,
            )
        entry = {
            "offset": offset,
            "rows": take,
            "sessions": len(sessions),
            "user_lo": int(rows.user_ids.min()) if take else None,
            "user_hi": int(rows.user_ids.max()) if take else None,
            "start_lo": float(rows.start_us.min()) if take else None,
            "start_hi": float(rows.start_us.max()) if take else None,
        }
        self._index.append(entry)
        self._rows_done = boundary
        self._buffered -= take
        self._sessions_done += len(sessions)
        self.chunks_written += 1
        if self._checkpoint:
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        """Make the flushed prefix durable and record it in the sidecar."""
        self._stream.flush()
        state = json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "rows_per_chunk": self.rows_per_chunk,
                "chunks": self.chunks_written,
                "rows": self._rows_done,
                "sessions": self._sessions_done,
                "data_end": self._stream.tell(),
                "index": self._index,
            },
            sort_keys=True, separators=(",", ":"),
        )
        sidecar = self.path + CHECKPOINT_SUFFIX
        tmp = sidecar + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(state)
        os.replace(tmp, sidecar)

    def _write_footer(self) -> None:
        footer = json.dumps(
            {
                "chunks": self._index,
                "rows": self._rows_done,
                "sessions": self._sessions_done,
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        offset = self._stream.tell()
        self._stream.write(struct.pack(_FRAME_FMT, _FRAME_FOOTER,
                                       len(footer), zlib.crc32(footer)))
        self._stream.write(footer)
        self._stream.write(struct.pack(_TAIL_FMT, offset))
        self._stream.write(MAGIC)


class TeeSink:
    """Fan one op stream out to several sinks (e.g. tally + stream file).

    Batches go to batch-aware sinks as batches; any sink without
    ``record_batch`` receives the same rows through the
    :meth:`~repro.core.opbatch.OpBatch.to_records` bridge (converted
    once per batch, however many scalar sinks are attached).
    """

    def __init__(self, *sinks):
        self.sinks = sinks

    def record_op(self, record: OpRecord) -> None:
        for sink in self.sinks:
            sink.record_op(record)

    def record_session(self, record: SessionRecord) -> None:
        for sink in self.sinks:
            sink.record_session(record)

    def record_batch(self, batch: OpBatch) -> None:
        records = None
        for sink in self.sinks:
            fold = getattr(sink, "record_batch", None)
            if fold is not None:
                fold(batch)
                continue
            if records is None:
                records = batch.to_records()
            record_op = sink.record_op
            for record in records:
                record_op(record)


class StreamFileSink:
    """An :class:`~repro.core.oplog.OpSink` that spills to a stream file.

    Drop-in for ``run_simulated(log=...)``: op rows buffer up to
    ``memory_budget_bytes`` of column data (``rows_per_chunk`` rows at
    the fixed :data:`ROW_BYTES` row width) and flush as one chunk frame;
    session records embed at their exact op-row positions.  Close the
    sink (or use it as a context manager) to write the footer index —
    an unclosed file has no footer and readers reject it as truncated.

    Scalar ``record_op`` calls are batched into columnar pieces before
    buffering, so even a DES run writes the same chunked format.
    """

    def __init__(self, path: str,
                 memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
                 metadata: dict | None = None, observer=None,
                 checkpoint: bool = False, flush_hook=None):
        self.memory_budget_bytes = int(memory_budget_bytes)
        self._writer = StreamWriter(
            path, rows_per_chunk_for(memory_budget_bytes), metadata=metadata,
            observer=observer, checkpoint=checkpoint, flush_hook=flush_hook)
        self._scalar: list[OpRecord] = []
        # Scalar records columnarise in blocks; never hold more than a
        # chunk's worth (and keep tiny-budget tests exact).
        self._scalar_block = min(4096, self._writer.rows_per_chunk)

    @classmethod
    def _from_writer(cls, writer: StreamWriter,
                     memory_budget_bytes: int) -> "StreamFileSink":
        """Wrap an already-open writer (the resume path)."""
        sink = cls.__new__(cls)
        sink.memory_budget_bytes = int(memory_budget_bytes)
        sink._writer = writer
        sink._scalar = []
        sink._scalar_block = min(4096, writer.rows_per_chunk)
        return sink

    @property
    def path(self) -> str:
        """The artifact path."""
        return self._writer.path

    @property
    def rows_per_chunk(self) -> int:
        """Op rows per chunk under this sink's budget."""
        return self._writer.rows_per_chunk

    @property
    def chunks_written(self) -> int:
        """Chunk frames flushed so far."""
        return self._writer.chunks_written

    @property
    def buffered_rows(self) -> int:
        """Op rows currently buffered in memory."""
        return self._writer.buffered_rows + len(self._scalar)

    def _drain_scalar(self) -> None:
        if self._scalar:
            records, self._scalar = self._scalar, []
            self._writer.add_batch(OpBatch.from_records(records))

    def record_op(self, record: OpRecord) -> None:
        self._scalar.append(record)
        if len(self._scalar) >= self._scalar_block:
            self._drain_scalar()

    def record_batch(self, batch: OpBatch) -> None:
        self._drain_scalar()
        self._writer.add_batch(batch)

    def record_session(self, record: SessionRecord) -> None:
        self._drain_scalar()
        self._writer.add_session(record)

    def close(self) -> None:
        """Flush everything and finalise the artifact."""
        self._drain_scalar()
        self._writer.close()

    def abort(self) -> None:
        """Close the file without a footer (see StreamWriter.abort)."""
        self._scalar = []
        self._writer.abort()

    def __enter__(self) -> "StreamFileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkInfo:
    """One footer-index entry (everything needed to seek and skip)."""

    index: int
    offset: int
    rows: int
    row_start: int
    sessions: int
    user_lo: int | None
    user_hi: int | None
    start_lo: float | None
    start_hi: float | None


@dataclass
class StreamChunk:
    """One decoded chunk: op rows plus positioned session records."""

    index: int
    batch: OpBatch
    sessions: list[tuple[int, SessionRecord]]
    row_start: int


def _normalize_users(users) -> "np.ndarray | None":
    if users is None:
        return None
    if isinstance(users, (int, np.integer)):
        return np.array([int(users)], dtype=np.int64)
    out = np.unique(np.asarray(sorted(int(u) for u in users),
                               dtype=np.int64))
    return out


class StreamReader:
    """Streaming, index-backed reader of one artifact file.

    Opens the file, validates magic/version/header, then seeks the
    footer through the fixed-size tail — so a reader never scans the
    whole file to answer ``total_rows`` or to slice by user/time.
    """

    def __init__(self, path: str):
        self.path = path
        try:
            self._stream = open(path, "rb")
        except OSError as exc:
            raise StreamFormatError(f"cannot open stream file: {exc}") from None
        try:
            self._size = os.fstat(self._stream.fileno()).st_size
            self._read_header()
            self._read_footer()
        except BaseException:
            self._stream.close()
            raise

    # -- parsing --------------------------------------------------------------

    def _must_read(self, n: int, what: str) -> bytes:
        # Bound by the file size before reading: a corrupt length field
        # must surface as StreamFormatError, not as a huge allocation.
        if n > self._size:
            raise StreamFormatError(f"truncated stream file: {what}")
        raw = self._stream.read(n)
        if len(raw) != n:
            raise StreamFormatError(f"truncated stream file: {what}")
        return raw

    def _read_header(self) -> None:
        version, header, _ = _parse_header(self._stream, self._size,
                                           self.path)
        self.version = version
        self.header = header
        self.rows_per_chunk = int(header["rows_per_chunk"])
        self.metadata = dict(header.get("metadata", {}))
        self.kinds = tuple(header.get("kinds", ()))

    def _read_footer(self) -> None:
        self._stream.seek(0, os.SEEK_END)
        size = self._stream.tell()
        if size < _TAIL_BYTES:
            raise StreamFormatError("truncated stream file: no tail")
        self._stream.seek(size - _TAIL_BYTES)
        tail = self._must_read(_TAIL_BYTES, "tail")
        if tail[struct.calcsize(_TAIL_FMT):] != MAGIC:
            raise StreamFormatError(
                "truncated stream file: missing footer (was the writer "
                "closed?)"
            )
        (footer_offset,) = struct.unpack(
            _TAIL_FMT, tail[:struct.calcsize(_TAIL_FMT)])
        if not (0 < footer_offset < size - _TAIL_BYTES):
            raise StreamFormatError("corrupt tail: footer offset out of range")
        kind, payload = self._read_frame(footer_offset, "footer")
        if kind != _FRAME_FOOTER:
            raise StreamFormatError("corrupt tail: offset is not a footer")
        try:
            footer = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise StreamFormatError(f"corrupt footer JSON: {exc}") from None
        self.total_rows = int(footer["rows"])
        self.total_sessions = int(footer["sessions"])
        self._footer_offset = footer_offset
        chunks = []
        row_start = 0
        for i, entry in enumerate(footer["chunks"]):
            chunks.append(ChunkInfo(
                index=i,
                offset=int(entry["offset"]),
                rows=int(entry["rows"]),
                row_start=row_start,
                sessions=int(entry["sessions"]),
                user_lo=entry["user_lo"],
                user_hi=entry["user_hi"],
                start_lo=entry["start_lo"],
                start_hi=entry["start_hi"],
            ))
            row_start += int(entry["rows"])
        if row_start != self.total_rows:
            raise StreamFormatError("corrupt footer: chunk rows disagree "
                                    "with the total")
        self.chunk_index: tuple[ChunkInfo, ...] = tuple(chunks)

    def _read_frame(self, offset: int, what: str):
        self._stream.seek(offset)
        head = self._must_read(struct.calcsize(_FRAME_FMT),
                               f"{what} frame header")
        kind, length, crc = struct.unpack(_FRAME_FMT, head)
        payload = self._must_read(length, f"{what} payload")
        if zlib.crc32(payload) != crc:
            raise StreamFormatError(f"{what} failed its checksum")
        return kind, payload

    # -- access ---------------------------------------------------------------

    def read_chunk(self, index: int) -> StreamChunk:
        """Decode chunk ``index`` (CRC-checked seek through the footer)."""
        info = self.chunk_index[index]
        kind, payload = self._read_frame(info.offset, f"chunk {index}")
        if kind != _FRAME_CHUNK:
            raise StreamFormatError(f"chunk {index}: not a chunk frame")
        batch, sessions = _decode_chunk(payload, f"chunk {index}")
        if len(batch) != info.rows or len(sessions) != info.sessions:
            raise StreamFormatError(
                f"chunk {index}: payload disagrees with the footer index"
            )
        return StreamChunk(index=index, batch=batch, sessions=sessions,
                           row_start=info.row_start)

    def _chunk_matches(self, info: ChunkInfo, users: "np.ndarray | None",
                       time_range) -> bool:
        if info.rows == 0:
            return users is None and time_range is None
        if users is not None:
            inside = users[(users >= info.user_lo) & (users <= info.user_hi)]
            if inside.size == 0:
                return False
        if time_range is not None:
            lo, hi = time_range
            if info.start_hi < lo or info.start_lo >= hi:
                return False
        return True

    def iter_chunks(self, users=None, time_range=None) -> Iterator[StreamChunk]:
        """Yield chunks in order, skipping via the footer index.

        ``users`` is a user id or an iterable of them; ``time_range`` a
        ``(lo, hi)`` half-open window over op start times.  Filters are
        applied chunk-wise here (a yielded chunk may still contain other
        rows); :meth:`iter_batches` applies the row-level mask.
        """
        users = _normalize_users(users)
        for info in self.chunk_index:
            if self._chunk_matches(info, users, time_range):
                yield self.read_chunk(info.index)

    def iter_batches(self, users=None, time_range=None) -> Iterator[OpBatch]:
        """Yield op-row batches, row-filtered by user and time window."""
        norm = _normalize_users(users)
        for chunk in self.iter_chunks(users=users, time_range=time_range):
            batch = chunk.batch
            if norm is None and time_range is None:
                if len(batch):
                    yield batch
                continue
            mask = np.ones(len(batch), dtype=bool)
            if norm is not None:
                mask &= np.isin(batch.user_ids, norm)
            if time_range is not None:
                lo, hi = time_range
                mask &= (batch.start_us >= lo) & (batch.start_us < hi)
            if mask.any():
                yield batch.select(mask)

    def replay(self, sink) -> tuple[int, int]:
        """Re-emit the artifact's exact event stream into ``sink``.

        Ops go through ``record_batch`` when the sink has one (the
        fast-columnar consumption path), else through the record bridge;
        session summaries interleave at their recorded positions.
        Returns ``(op_rows, sessions)`` replayed.  Replaying into a new
        :class:`StreamFileSink` with the same budget reproduces the
        artifact byte for byte.
        """
        record_batch = getattr(sink, "record_batch", None)
        rows = sessions = 0
        for chunk in self.iter_chunks():
            batch = chunk.batch
            cursor = 0
            for position, record in chunk.sessions:
                local = min(max(position - chunk.row_start, 0), len(batch))
                if local > cursor:
                    piece = batch.select(slice(cursor, local))
                    if record_batch is not None:
                        record_batch(piece)
                    else:
                        for op in piece.to_records():
                            sink.record_op(op)
                    cursor = local
                sink.record_session(record)
                sessions += 1
            if cursor < len(batch):
                piece = batch.select(slice(cursor, len(batch)))
                if record_batch is not None:
                    record_batch(piece)
                else:
                    for op in piece.to_records():
                        sink.record_op(op)
            rows += len(batch)
        return rows, sessions

    def info_kv(self) -> dict:
        """Human-readable summary (the ``stream info`` CLI verb)."""
        users = [c for c in self.chunk_index if c.rows]
        out = {
            "path": self.path,
            "format version": self.version,
            "op rows": self.total_rows,
            "sessions": self.total_sessions,
            "chunks": len(self.chunk_index),
            "rows per chunk": self.rows_per_chunk,
            "file bytes": os.path.getsize(self.path),
        }
        if users:
            out["user ids"] = (f"{min(c.user_lo for c in users)}.."
                               f"{max(c.user_hi for c in users)}")
            out["op start span (µs)"] = (
                f"{min(c.start_lo for c in users):.1f}.."
                f"{max(c.start_hi for c in users):.1f}")
        for key, value in sorted(self.metadata.items()):
            out[f"meta.{key}"] = value
        return out

    def close(self) -> None:
        """Close the underlying file."""
        self._stream.close()

    def __enter__(self) -> "StreamReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_batches(path: str, users=None, time_range=None) -> Iterator[OpBatch]:
    """Stream an artifact's op rows (module-level convenience).

    Opens ``path``, yields :class:`~repro.core.opbatch.OpBatch` chunks
    (row-filtered by ``users`` / ``time_range`` like
    :meth:`StreamReader.iter_batches`), and closes the file when the
    iterator is exhausted or discarded.
    """
    with StreamReader(path) as reader:
        yield from reader.iter_batches(users=users, time_range=time_range)


# ---------------------------------------------------------------------------
# Shard merge
# ---------------------------------------------------------------------------


def _iter_user_groups(reader: StreamReader):
    """Yield ``(user_id, events)`` per user, in the artifact's order.

    ``events`` is the user's slice of the event stream: ``("rows",
    batch)`` and ``("session", record)`` entries in arrival order.
    Requires user-contiguous artifacts (each user's events form one run,
    users in ascending order) — what the engine-free backends write.
    DES artifacts interleave users on the shared engine clock and are
    rejected.
    """
    current: int | None = None
    events: list = []
    for chunk in reader.iter_chunks():
        batch = chunk.batch
        n = len(batch)
        boundaries: list[tuple[int, SessionRecord | None]] = [
            (min(max(pos - chunk.row_start, 0), n), rec)
            for pos, rec in chunk.sessions
        ]
        boundaries.append((n, None))
        cursor = 0
        for local, record in boundaries:
            if local > cursor:
                seg = batch.select(slice(cursor, local))
                uids = seg.user_ids
                splits = list(np.flatnonzero(np.diff(uids)) + 1) + [len(seg)]
                start = 0
                for stop in splits:
                    sub = seg.select(slice(start, int(stop)))
                    uid = int(sub.user_ids[0])
                    if uid != current:
                        if current is not None:
                            yield current, events
                            if uid <= current:
                                raise StreamFormatError(
                                    f"{reader.path}: user {uid} follows "
                                    f"user {current}; stream merge needs "
                                    "user-contiguous artifacts (engine-free "
                                    "backends)"
                                )
                        current, events = uid, []
                    events.append(("rows", sub))
                    start = int(stop)
                cursor = local
            if record is not None:
                uid = record.user_id
                if uid != current:
                    if current is not None:
                        yield current, events
                        if uid <= current:
                            raise StreamFormatError(
                                f"{reader.path}: session for user {uid} "
                                f"follows user {current}; stream merge "
                                "needs user-contiguous artifacts"
                            )
                    current, events = uid, []
                events.append(("session", record))
    if current is not None:
        yield current, events


def merge_stream_files(output: str, inputs: Iterable[str],
                       metadata: dict | None = None) -> int:
    """K-way merge per-shard artifacts into one canonical file.

    Inputs must share the format version, schema and ``rows_per_chunk``
    and hold disjoint, user-contiguous populations (what
    ``run_fleet(..., out_stream=...)`` shards write).  Users interleave
    back into ascending id order — the engine-free backends' canonical
    execution order — and the event stream is re-chunked under the same
    deterministic boundary rule, so the merged artifact is **bit
    identical** to the one a single-shard run writes.  Returns the
    number of op rows merged.

    ``metadata`` defaults to the first input's (shard metadata is
    run-level and identical across shards).
    """
    paths = list(inputs)
    if not paths:
        raise ValueError("merge_stream_files needs at least one input")
    readers = [StreamReader(p) for p in paths]
    try:
        first = readers[0]
        for reader in readers[1:]:
            if reader.version != first.version:
                raise StreamFormatError(
                    f"{reader.path}: format version {reader.version} != "
                    f"{first.version}"
                )
            if reader.rows_per_chunk != first.rows_per_chunk:
                raise StreamFormatError(
                    f"{reader.path}: rows_per_chunk "
                    f"{reader.rows_per_chunk} != {first.rows_per_chunk}; "
                    "shards must share one memory budget"
                )
        if metadata is None:
            metadata = first.metadata
        groups = [_iter_user_groups(r) for r in readers]
        heads: dict[int, tuple[int, list]] = {}
        for i, group in enumerate(groups):
            head = next(group, None)
            if head is not None:
                heads[i] = head
        rows = 0
        try:
            with StreamWriter(output, first.rows_per_chunk,
                              metadata=metadata) as writer:
                while heads:
                    source = min(heads, key=lambda i: heads[i][0])
                    uid, events = heads[source]
                    clashes = [i for i, (u, _) in heads.items()
                               if u == uid and i != source]
                    if clashes:
                        raise StreamFormatError(
                            f"user {uid} appears in both "
                            f"{readers[source].path} and "
                            f"{readers[clashes[0]].path}; shards must be "
                            "disjoint"
                        )
                    for kind, payload in events:
                        if kind == "rows":
                            writer.add_batch(payload)
                            rows += len(payload)
                        else:
                            writer.add_session(payload)
                    head = next(groups[source], None)
                    if head is None:
                        del heads[source]
                    else:
                        heads[source] = head
        except BaseException:
            # Never leave a half-written artifact behind.
            with contextlib.suppress(OSError):
                os.unlink(output)
            raise
        return rows
    finally:
        for reader in readers:
            reader.close()


# ---------------------------------------------------------------------------
# Crash salvage, resume, and verification
# ---------------------------------------------------------------------------


def _entry_from_chunk(offset: int, batch: OpBatch,
                      sessions: list) -> dict:
    """A writer-style index entry rebuilt from a decoded chunk."""
    n = len(batch)
    return {
        "offset": offset,
        "rows": n,
        "sessions": len(sessions),
        "user_lo": int(batch.user_ids.min()) if n else None,
        "user_hi": int(batch.user_ids.max()) if n else None,
        "start_lo": float(batch.start_us.min()) if n else None,
        "start_hi": float(batch.start_us.max()) if n else None,
    }


def _sequential_scan(stream, size: int, data_start: int):
    """Walk chunk frames forward from ``data_start``, CRC-checking each.

    Returns ``(entries, data_end, error)``: the index entries of every
    intact chunk frame before the first problem, the offset just past
    the last of them, and a description of what stopped the walk (None
    when it ended cleanly at a footer frame or at end of data).
    """
    frame_head = struct.calcsize(_FRAME_FMT)
    entries: list[dict] = []
    pos = data_start
    while True:
        if pos == size:
            return entries, pos, None
        stream.seek(pos)
        head = stream.read(frame_head)
        if len(head) < frame_head:
            return entries, pos, f"truncated frame header at offset {pos}"
        kind, length, crc = struct.unpack(_FRAME_FMT, head)
        if kind == _FRAME_FOOTER:
            return entries, pos, None
        if kind != _FRAME_CHUNK:
            return entries, pos, f"unknown frame type {kind!r} at offset {pos}"
        if pos + frame_head + length > size:
            return entries, pos, f"truncated chunk payload at offset {pos}"
        payload = stream.read(length)
        if len(payload) != length:
            return entries, pos, f"truncated chunk payload at offset {pos}"
        if zlib.crc32(payload) != crc:
            return (entries, pos,
                    f"chunk {len(entries)} failed its checksum "
                    f"(offset {pos})")
        try:
            batch, sessions = _decode_chunk(
                payload, f"chunk {len(entries)}")
        except StreamFormatError as exc:
            return entries, pos, str(exc)
        entries.append(_entry_from_chunk(pos, batch, sessions))
        pos += frame_head + length


@dataclass
class ReplaySummary:
    """What :meth:`SalvagedStream.replay` fed into the sink.

    ``last_user`` (with its op-row and session counts inside the
    salvaged prefix) is the resume boundary: in a user-contiguous
    artifact every event the crash lost belongs to that user or later
    ones, because chunk *i* is only flushed once a row of chunk *i+1*
    has arrived — the last salvaged user's first row postdates every
    earlier user's entire event stream.
    """

    rows: int = 0
    sessions: int = 0
    max_end_us: float = 0.0
    last_user: int | None = None
    last_user_rows: int = 0
    last_user_sessions: int = 0


@dataclass
class SalvagedStream:
    """The verified, reusable prefix of a (possibly crashed) artifact.

    ``complete`` means the footer was intact and the whole file is
    reusable; otherwise ``index`` lists the CRC-verified *full* chunks
    (exactly ``rows_per_chunk`` rows each — a short tail chunk is
    dropped because resumed frames must land on the same deterministic
    boundaries) and ``data_end`` is the byte offset a resumed writer
    truncates to.
    """

    path: str
    version: int
    rows_per_chunk: int
    metadata: dict
    complete: bool
    index: list[dict]
    rows: int
    sessions: int
    data_end: int

    def _iter_chunks(self):
        frame_head = struct.calcsize(_FRAME_FMT)
        with open(self.path, "rb") as stream:
            for i, entry in enumerate(self.index):
                stream.seek(int(entry["offset"]))
                head = stream.read(frame_head)
                if len(head) < frame_head:
                    raise StreamFormatError(
                        f"{self.path}: salvaged chunk {i} vanished"
                    )
                kind, length, crc = struct.unpack(_FRAME_FMT, head)
                payload = stream.read(length)
                if (kind != _FRAME_CHUNK or len(payload) != length
                        or zlib.crc32(payload) != crc):
                    raise StreamFormatError(
                        f"{self.path}: salvaged chunk {i} failed "
                        "re-verification"
                    )
                yield _decode_chunk(payload, f"salvaged chunk {i}")

    def replay(self, sink) -> ReplaySummary:
        """Re-emit the salvaged prefix into ``sink`` (see StreamReader).

        Ops and session records interleave at their recorded positions,
        so an order-invariant accumulator (the exact-integer tally)
        ends up exactly as if it had seen the original events.  The
        returned summary carries the resume boundary.
        """
        record_batch = getattr(sink, "record_batch", None)
        out = ReplaySummary()
        row_start = 0

        def emit(piece: OpBatch) -> None:
            if not len(piece):
                return
            if record_batch is not None:
                record_batch(piece)
            else:
                for op in piece.to_records():
                    sink.record_op(op)
            end = float((piece.start_us + piece.response_us).max())
            if end > out.max_end_us:
                out.max_end_us = end
            last = int(piece.user_ids[-1])
            if out.last_user is None or last > out.last_user:
                out.last_user = last
                out.last_user_rows = 0
                out.last_user_sessions = 0
            out.last_user_rows += int((piece.user_ids == last).sum())

        for batch, sessions in self._iter_chunks():
            cursor = 0
            for position, record in sessions:
                local = min(max(position - row_start, 0), len(batch))
                if local > cursor:
                    emit(batch.select(slice(cursor, local)))
                    cursor = local
                sink.record_session(record)
                out.sessions += 1
                uid = int(record.user_id)
                if out.last_user is None or uid > out.last_user:
                    out.last_user = uid
                    out.last_user_rows = 0
                    out.last_user_sessions = 0
                if uid == out.last_user:
                    out.last_user_sessions += 1
                if record.end_us > out.max_end_us:
                    out.max_end_us = float(record.end_us)
            if cursor < len(batch):
                emit(batch.select(slice(cursor, len(batch))))
            row_start += len(batch)
            out.rows += len(batch)
        return out


def salvage_stream(path: str) -> SalvagedStream:
    """Find the intact, resumable prefix of an artifact at ``path``.

    A file with a valid footer is ``complete`` (fully reusable).
    Otherwise the checkpoint sidecar, when present and consistent, names
    the candidate chunks and only their CRCs are re-verified; a missing
    or disagreeing sidecar degrades to a sequential CRC walk.  Either
    way only *verified full* chunks survive into the result — anything
    doubtful is treated as lost and will be regenerated.
    """
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise StreamFormatError(f"cannot stat stream file: {exc}") from None
    try:
        with StreamReader(path) as reader:
            entries = [
                {
                    "offset": info.offset,
                    "rows": info.rows,
                    "sessions": info.sessions,
                    "user_lo": info.user_lo,
                    "user_hi": info.user_hi,
                    "start_lo": info.start_lo,
                    "start_hi": info.start_hi,
                }
                for info in reader.chunk_index
            ]
            return SalvagedStream(
                path=path, version=reader.version,
                rows_per_chunk=reader.rows_per_chunk,
                metadata=dict(reader.metadata), complete=True,
                index=entries, rows=reader.total_rows,
                sessions=reader.total_sessions,
                data_end=reader._footer_offset,
            )
    except StreamFormatError:
        pass
    with open(path, "rb") as stream:
        version, header, data_start = _parse_header(stream, size, path)
        rows_per_chunk = int(header["rows_per_chunk"])
        entries = _salvage_via_sidecar(stream, size, path, rows_per_chunk)
        if entries is None:
            entries, _, _ = _sequential_scan(stream, size, data_start)
    frame_head = struct.calcsize(_FRAME_FMT)
    # Only full chunks resume on the original boundaries; a short tail
    # chunk (written by a crashed close()) is dropped and regenerated.
    while entries and int(entries[-1]["rows"]) != rows_per_chunk:
        entries.pop()
    data_end = data_start
    if entries:
        with open(path, "rb") as stream:
            stream.seek(int(entries[-1]["offset"]))
            head = stream.read(frame_head)
            _, length, _ = struct.unpack(_FRAME_FMT, head)
            data_end = int(entries[-1]["offset"]) + frame_head + length
    return SalvagedStream(
        path=path, version=version, rows_per_chunk=rows_per_chunk,
        metadata=dict(header.get("metadata", {})), complete=False,
        index=entries, rows=sum(int(e["rows"]) for e in entries),
        sessions=sum(int(e["sessions"]) for e in entries),
        data_end=data_end,
    )


def _salvage_via_sidecar(stream, size: int, path: str,
                         rows_per_chunk: int) -> "list[dict] | None":
    """Re-verify the chunks a checkpoint sidecar claims, or None."""
    sidecar = path + CHECKPOINT_SUFFIX
    try:
        with open(sidecar, "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except (OSError, ValueError):
        return None
    try:
        if (state["format"] != CHECKPOINT_FORMAT
                or int(state["version"]) > CHECKPOINT_VERSION
                or int(state["rows_per_chunk"]) != rows_per_chunk
                or int(state["data_end"]) > size):
            return None
        claimed = list(state["index"])
    except (KeyError, TypeError, ValueError):
        return None
    frame_head = struct.calcsize(_FRAME_FMT)
    entries: list[dict] = []
    expected_offset = None
    for entry in claimed:
        try:
            offset = int(entry["offset"])
        except (KeyError, TypeError, ValueError):
            break
        # Chunk frames are contiguous; a sidecar claiming an entry that
        # does not start where the previous frame ended is lying.
        if expected_offset is not None and offset != expected_offset:
            break
        stream.seek(offset)
        head = stream.read(frame_head)
        if len(head) < frame_head:
            break
        kind, length, crc = struct.unpack(_FRAME_FMT, head)
        if kind != _FRAME_CHUNK or offset + frame_head + length > size:
            break
        payload = stream.read(length)
        if len(payload) != length or zlib.crc32(payload) != crc:
            break
        entries.append(dict(entry))
        expected_offset = offset + frame_head + length
    return entries


def resume_stream_sink(path: str,
                       memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
                       metadata: dict | None = None, observer=None,
                       checkpoint: bool = True, flush_hook=None):
    """A :class:`StreamFileSink` continuing whatever survives at ``path``.

    Returns ``(sink, salvaged)``:

    * no usable prefix (missing file, foreign budget, nothing verified)
      — a fresh sink overwriting ``path``, ``salvaged`` None;
    * a crashed prefix — a sink resuming after the last intact chunk,
      with ``salvaged`` describing what to replay and skip;
    * an already-complete artifact — ``sink`` None, ``salvaged``
      carries the full file.
    """
    rows_per_chunk = rows_per_chunk_for(memory_budget_bytes)
    salvaged = None
    if os.path.exists(path):
        try:
            salvaged = salvage_stream(path)
        except StreamFormatError:
            salvaged = None
        if salvaged is not None and (
                salvaged.rows_per_chunk != rows_per_chunk
                or (not salvaged.complete and not salvaged.index)):
            salvaged = None
    if salvaged is None:
        sink = StreamFileSink(
            path, memory_budget_bytes, metadata=metadata, observer=observer,
            checkpoint=checkpoint, flush_hook=flush_hook)
        return sink, None
    if salvaged.complete:
        return None, salvaged
    writer = StreamWriter.resume(
        salvaged, metadata=metadata, observer=observer,
        checkpoint=checkpoint, flush_hook=flush_hook)
    return StreamFileSink._from_writer(writer, memory_budget_bytes), salvaged


@dataclass
class StreamVerifyReport:
    """Outcome of a full-file CRC walk (the ``stream verify`` verb)."""

    path: str
    ok: bool
    complete: bool
    chunks: int
    chunks_ok: int
    rows: int
    sessions: int
    file_bytes: int
    errors: list[str]

    def as_kv(self) -> dict:
        """Human-readable summary for the CLI."""
        return {
            "path": self.path,
            "verdict": "ok" if self.ok else "CORRUPT",
            "complete": self.complete,
            "chunks ok": f"{self.chunks_ok}/{self.chunks}",
            "op rows": self.rows,
            "sessions": self.sessions,
            "file bytes": self.file_bytes,
            "errors": len(self.errors),
        }


def verify_stream(path: str) -> StreamVerifyReport:
    """Exhaustively CRC-check and decode every frame of an artifact.

    Unlike lazy reads — which only fault on the chunks a consumer
    happens to touch — this walks header, every chunk payload (decoded,
    not just checksummed), the footer, and the tail, and reports every
    problem found.  ``ok`` requires a complete file with zero errors.
    """
    errors: list[str] = []
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        return StreamVerifyReport(path=path, ok=False, complete=False,
                                  chunks=0, chunks_ok=0, rows=0, sessions=0,
                                  file_bytes=0, errors=[str(exc)])
    try:
        with open(path, "rb") as stream:
            _, _, data_start = _parse_header(stream, size, path)
    except (OSError, StreamFormatError) as exc:
        return StreamVerifyReport(path=path, ok=False, complete=False,
                                  chunks=0, chunks_ok=0, rows=0, sessions=0,
                                  file_bytes=size, errors=[f"header: {exc}"])
    reader = None
    try:
        reader = StreamReader(path)
    except StreamFormatError as exc:
        errors.append(f"footer: {exc}")
    if reader is not None:
        try:
            chunks = len(reader.chunk_index)
            chunks_ok = 0
            sessions_seen = 0
            for info in reader.chunk_index:
                try:
                    chunk = reader.read_chunk(info.index)
                except StreamFormatError as exc:
                    errors.append(f"chunk {info.index}: {exc}")
                else:
                    chunks_ok += 1
                    sessions_seen += len(chunk.sessions)
            if sessions_seen != reader.total_sessions and not errors:
                errors.append(
                    f"footer: session total {reader.total_sessions} != "
                    f"{sessions_seen} found in chunks"
                )
            return StreamVerifyReport(
                path=path, ok=not errors, complete=True, chunks=chunks,
                chunks_ok=chunks_ok, rows=reader.total_rows,
                sessions=reader.total_sessions, file_bytes=size,
                errors=errors,
            )
        finally:
            reader.close()
    with open(path, "rb") as stream:
        entries, _, scan_error = _sequential_scan(stream, size, data_start)
    if scan_error is not None:
        errors.append(scan_error)
    return StreamVerifyReport(
        path=path, ok=False, complete=False, chunks=len(entries),
        chunks_ok=len(entries),
        rows=sum(int(e["rows"]) for e in entries),
        sessions=sum(int(e["sessions"]) for e in entries),
        file_bytes=size, errors=errors,
    )
