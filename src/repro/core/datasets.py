"""The thesis's measured characterization tables, transcribed.

Tables 5.1 and 5.2 summarise the Devarakonda & Iyer measurements of a
UNIX university environment the thesis drives its example experiments
with; Table 5.4 defines the three user types of the section 5.2 NFS
study.  The thesis specifies only *means* for these measures and then
assumes exponential distributions (section 5.1); the builder functions
below do exactly that, while letting callers swap in any other
distribution family.

Note on Table 5.2's first "accesses" entry: the thesis prints ``3128``
for DIR/USER/RDONLY where every other category lies in 0.75–3.50; the
column is accesses *per byte* (the quantity plotted in Figure 5.3 with
an axis reaching ~6), so we transcribe it as 3.128 — a missing decimal
point in the scanned original.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributions import Constant, Distribution, ShiftedExponential
from .spec import (
    FileCategory,
    FileCategorySpec,
    FileType,
    Owner,
    UsageSpec,
    UserTypeSpec,
    UseType,
    WorkloadSpec,
)

__all__ = [
    "Table51Row",
    "Table52Row",
    "TABLE_5_1",
    "TABLE_5_2",
    "TABLE_5_4_THINK_TIME_US",
    "DEFAULT_ACCESS_SIZE_MEAN",
    "DEFAULT_THINK_TIME_MEAN",
    "paper_file_categories",
    "paper_usage_specs",
    "paper_user_type",
    "paper_workload_spec",
]


def _cat(file_type: str, owner: str, use: str) -> FileCategory:
    return FileCategory(FileType(file_type), Owner(owner), UseType(use))


@dataclass(frozen=True)
class Table51Row:
    """One row of Table 5.1: file characterization by category."""

    category: FileCategory
    mean_file_size: float
    percent_of_files: float


@dataclass(frozen=True)
class Table52Row:
    """One row of Table 5.2: user characterization by category."""

    category: FileCategory
    mean_accesses_per_byte: float
    mean_file_size: float
    mean_files: float
    percent_of_users: float


TABLE_5_1: tuple[Table51Row, ...] = (
    Table51Row(_cat("DIR", "USER", "RDONLY"), 714.0, 7.7),
    Table51Row(_cat("DIR", "OTHER", "RDONLY"), 779.0, 3.4),
    Table51Row(_cat("REG", "USER", "RDONLY"), 5794.0, 21.8),
    Table51Row(_cat("REG", "USER", "NEW"), 11164.0, 9.7),
    Table51Row(_cat("REG", "USER", "RD-WRT"), 17431.0, 4.6),
    Table51Row(_cat("REG", "USER", "TEMP"), 12431.0, 38.2),
    Table51Row(_cat("REG", "NOTES", "RDONLY"), 31347.0, 6.4),
    Table51Row(_cat("REG", "NOTES", "RD-WRT"), 18771.0, 3.2),
    Table51Row(_cat("REG", "OTHER", "RDONLY"), 15072.0, 5.0),
)
"""Table 5.1 as printed (sizes in bytes, percentages of all files)."""


TABLE_5_2: tuple[Table52Row, ...] = (
    Table52Row(_cat("DIR", "USER", "RDONLY"), 3.128, 808.0, 2.9, 69.0),
    Table52Row(_cat("DIR", "OTHER", "RDONLY"), 2.28, 1198.0, 2.5, 70.0),
    Table52Row(_cat("REG", "USER", "RDONLY"), 1.42, 2608.0, 6.0, 100.0),
    Table52Row(_cat("REG", "USER", "NEW"), 2.36, 11438.0, 4.0, 40.0),
    Table52Row(_cat("REG", "USER", "RD-WRT"), 3.50, 19860.0, 2.2, 46.0),
    Table52Row(_cat("REG", "USER", "TEMP"), 2.00, 9233.0, 9.7, 59.0),
    Table52Row(_cat("REG", "NOTES", "RDONLY"), 0.75, 53965.0, 11.3, 53.0),
    Table52Row(_cat("REG", "NOTES", "RD-WRT"), 1.77, 20383.0, 5.7, 38.0),
    Table52Row(_cat("REG", "OTHER", "RDONLY"), 2.11, 13578.0, 3.1, 55.0),
)
"""Table 5.2 as printed (see module docstring for the 3.128 reading)."""


TABLE_5_4_THINK_TIME_US: dict[str, float] = {
    "extremely heavy I/O": 0.0,
    "heavy I/O": 5000.0,
    "light I/O": 20000.0,
}
"""Table 5.4: the three experiment user types by mean think time (µs)."""

DEFAULT_ACCESS_SIZE_MEAN = 1024.0
"""Section 5.1: access sizes exponentially distributed, mean 1 024 bytes."""

DEFAULT_THINK_TIME_MEAN = 5000.0
"""Section 5.1: think time exponentially distributed, mean 5 000 µs."""


def paper_file_categories() -> tuple[FileCategorySpec, ...]:
    """Table 5.1 as FSC input, with the exponential-size assumption."""
    return tuple(
        FileCategorySpec(
            category=row.category,
            size_distribution=ShiftedExponential(row.mean_file_size),
            fraction_of_files=row.percent_of_files / 100.0,
        )
        for row in TABLE_5_1
    )


def paper_usage_specs() -> tuple[UsageSpec, ...]:
    """Table 5.2 as USIM input, with the exponential assumption."""
    return tuple(
        UsageSpec(
            category=row.category,
            access_per_byte=ShiftedExponential(row.mean_accesses_per_byte),
            file_count=ShiftedExponential(row.mean_files),
            file_size=ShiftedExponential(row.mean_file_size),
            fraction_of_users=row.percent_of_users / 100.0,
        )
        for row in TABLE_5_2
    )


def paper_user_type(
    name: str,
    fraction: float = 1.0,
    think_time_mean_us: float = DEFAULT_THINK_TIME_MEAN,
    access_size_mean: float = DEFAULT_ACCESS_SIZE_MEAN,
) -> UserTypeSpec:
    """A Table 5.2 user with the given think-time mean (Table 5.4 values).

    A zero mean produces the "extremely heavy I/O" point-mass think time.
    """
    if think_time_mean_us > 0:
        think: Distribution = ShiftedExponential(think_time_mean_us)
    else:
        think = Constant(0.0)
    return UserTypeSpec(
        name=name,
        fraction=fraction,
        usage=paper_usage_specs(),
        think_time=think,
        access_size=ShiftedExponential(access_size_mean),
    )


def paper_workload_spec(
    n_users: int = 1,
    total_files: int = 400,
    seed: int = 0,
    heavy_fraction: float = 1.0,
    heavy_think_us: float = TABLE_5_4_THINK_TIME_US["heavy I/O"],
    light_think_us: float = TABLE_5_4_THINK_TIME_US["light I/O"],
    access_size_mean: float = DEFAULT_ACCESS_SIZE_MEAN,
) -> WorkloadSpec:
    """The section 5.2 experiment populations.

    ``heavy_fraction`` selects the population mix: 1.0 reproduces the
    "100% heavy" runs, 0.8 the "80% heavy / 20% light" runs, and so on.
    Pass ``heavy_think_us=0`` for the all-extremely-heavy population of
    Figure 5.6.
    """
    user_types: list[UserTypeSpec] = []
    if heavy_fraction > 0:
        user_types.append(
            paper_user_type(
                "heavy", heavy_fraction,
                think_time_mean_us=heavy_think_us,
                access_size_mean=access_size_mean,
            )
        )
    if heavy_fraction < 1:
        user_types.append(
            paper_user_type(
                "light", 1.0 - heavy_fraction,
                think_time_mean_us=light_think_us,
                access_size_mean=access_size_mean,
            )
        )
    return WorkloadSpec(
        file_categories=paper_file_categories(),
        user_types=tuple(user_types),
        total_files=total_files,
        n_users=n_users,
        seed=seed,
    )
