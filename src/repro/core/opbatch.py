"""Columnar operation streams — the op stream as parallel NumPy arrays.

A scalar op stream is a sequence of :class:`~repro.core.synthesis.
SessionOp` / :class:`~repro.core.oplog.OpRecord` dataclasses; at fleet
scale the per-object allocation and per-field attribute access dominate
the fast backend's runtime.  :class:`OpBatch` stores the same stream as
a struct-of-arrays: one int8 *kind code* per operation, int64
``plan_id``/``size`` columns, float64 timing columns, and small interned
string tables for paths, category keys and user-type names (string
columns hold int32 indices into those tables, ``-1`` meaning "absent").

The batch is the unit the columnar pipeline moves around:

* :meth:`repro.core.synthesis.SessionGenerator.generate_session_batch`
  produces one batch per login session (timing columns zero);
* :class:`repro.core.execution.ColumnarReplayBackend` fills
  ``start_us``/``response_us`` with one array expression and hands the
  executed slice to the sink;
* sinks that implement ``record_batch`` (:class:`~repro.core.oplog.
  UsageLog`, :class:`~repro.fleet.merge.WorkloadTally`,
  :class:`~repro.fleet.merge.ShardAccumulator`) fold whole batches with
  ``np.bincount``-style reductions; everything else receives the batch
  through the :meth:`to_records` bridge, one record at a time.

Determinism: a batch is a *representation*, never a re-sampling.  The
bridges (:meth:`to_records`, :meth:`from_records`,
:meth:`iter_session_ops`) are exact inverses of the scalar structures,
which is what the golden tests in ``tests/core/test_columnar_golden.py``
pin down.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..vfs import OpenFlags
from .oplog import OpRecord

__all__ = [
    "OP_KIND_NAMES",
    "OP_KIND_CODES",
    "KIND_OPEN",
    "KIND_CREAT",
    "KIND_READ",
    "KIND_WRITE",
    "KIND_LSEEK",
    "KIND_CLOSE",
    "KIND_UNLINK",
    "KIND_STAT",
    "KIND_LISTDIR",
    "KIND_THINK",
    "DATA_KIND_CODES",
    "REFERENCE_KIND_CODES",
    "StringTable",
    "OpBatch",
]

OP_KIND_NAMES: tuple[str, ...] = (
    "open", "creat", "read", "write", "lseek", "close", "unlink", "stat",
    "listdir", "think",
)
"""Canonical op-kind order; the int8 code of a kind is its index here."""

OP_KIND_CODES: dict[str, int] = {name: i for i, name in enumerate(OP_KIND_NAMES)}

(
    KIND_OPEN,
    KIND_CREAT,
    KIND_READ,
    KIND_WRITE,
    KIND_LSEEK,
    KIND_CLOSE,
    KIND_UNLINK,
    KIND_STAT,
    KIND_LISTDIR,
    KIND_THINK,
) = range(len(OP_KIND_NAMES))

DATA_KIND_CODES: tuple[int, ...] = (KIND_READ, KIND_WRITE, KIND_LISTDIR)
"""Kinds whose ``size`` is bytes actually moved (recorded as-is)."""

# Kinds that reference a file for session accounting (open/creat/stat).
REFERENCE_KIND_CODES: tuple[int, ...] = (KIND_OPEN, KIND_CREAT, KIND_STAT)

_KIND_NAME_ARRAY = np.array(OP_KIND_NAMES)


class StringTable:
    """An append-only string interner: string ↔ dense int32 index."""

    __slots__ = ("_values", "_index")

    def __init__(self, values: Iterable[str] = ()):
        self._values: list[str] = list(values)
        self._index: dict[str, int] = {
            value: i for i, value in enumerate(self._values)
        }

    def intern(self, value: "str | None") -> int:
        """Index of ``value`` (appending it on first sight); None → -1."""
        if value is None:
            return -1
        idx = self._index.get(value)
        if idx is None:
            idx = len(self._values)
            self._values.append(value)
            self._index[value] = idx
        return idx

    def intern_many(self, values: Sequence[str]) -> np.ndarray:
        """Intern a whole sequence in one call; returns the int32 indices.

        One bound-method dispatch for a session's (or user's) entire path
        vocabulary instead of one :meth:`intern` call per op — the
        batched interning the columnar plan builder uses.  Append order
        (first sight wins) is identical to sequential ``intern`` calls.
        """
        index = self._index
        table = self._values
        out = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            idx = index.get(value)
            if idx is None:
                idx = len(table)
                table.append(value)
                index[value] = idx
            out[i] = idx
        return out

    def lookup(self, idx: int) -> "str | None":
        """Inverse of :meth:`intern` (−1 → None)."""
        if idx < 0:
            return None
        return self._values[idx]

    def values(self) -> list[str]:
        """The interned strings, in index order."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)


class OpBatch:
    """One op stream as parallel arrays plus interned string tables.

    All columns have the same length.  ``plan_ids``, ``path_idx``,
    ``category_idx`` and ``user_type_idx`` use ``-1`` for "absent"
    (``None`` in the scalar structures).  Slicing (:meth:`select`)
    shares the string tables with the parent batch — indices stay valid
    because tables are append-only.
    """

    __slots__ = (
        "kinds", "plan_ids", "sizes", "flags", "path_idx", "category_idx",
        "user_ids", "session_ids", "user_type_idx", "start_us",
        "response_us", "think_us", "paths", "categories", "user_types",
    )

    def __init__(
        self,
        kinds: np.ndarray,
        plan_ids: np.ndarray,
        sizes: np.ndarray,
        flags: np.ndarray,
        path_idx: np.ndarray,
        category_idx: np.ndarray,
        user_ids: np.ndarray,
        session_ids: np.ndarray,
        user_type_idx: np.ndarray,
        start_us: np.ndarray,
        response_us: np.ndarray,
        paths: StringTable,
        categories: StringTable,
        user_types: StringTable,
        think_us: "np.ndarray | None" = None,
    ):
        self.kinds = kinds                  # int8 kind codes
        self.plan_ids = plan_ids            # int64, -1 = None
        self.sizes = sizes                  # int64
        self.flags = flags                  # int16 OpenFlags values
        self.path_idx = path_idx            # int32 into paths, -1 = None
        self.category_idx = category_idx    # int32 into categories, -1 = None
        self.user_ids = user_ids            # int64
        self.session_ids = session_ids      # int64
        self.user_type_idx = user_type_idx  # int32 into user_types
        self.start_us = start_us            # float64
        self.response_us = response_us      # float64
        # Synthesis-produced batches carry the think pause *after* each
        # op as a parallel int64 column rather than interleaved rows:
        # half the rows to gather/time, and record batches (which never
        # contain thinks) stay a 1:1 image of OpRecord lists.
        self.think_us = think_us
        self.paths = paths
        self.categories = categories
        self.user_types = user_types

    def __len__(self) -> int:
        return len(self.kinds)

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(
        cls,
        n: int,
        paths: "StringTable | None" = None,
        categories: "StringTable | None" = None,
        user_types: "StringTable | None" = None,
    ) -> "OpBatch":
        """An uninitialised batch of ``n`` rows (caller fills every column)."""
        return cls(
            kinds=np.empty(n, dtype=np.int8),
            plan_ids=np.empty(n, dtype=np.int64),
            sizes=np.empty(n, dtype=np.int64),
            flags=np.empty(n, dtype=np.int16),
            path_idx=np.empty(n, dtype=np.int32),
            category_idx=np.empty(n, dtype=np.int32),
            user_ids=np.empty(n, dtype=np.int64),
            session_ids=np.empty(n, dtype=np.int64),
            user_type_idx=np.empty(n, dtype=np.int32),
            start_us=np.zeros(n, dtype=np.float64),
            response_us=np.zeros(n, dtype=np.float64),
            paths=paths if paths is not None else StringTable(),
            categories=categories if categories is not None else StringTable(),
            user_types=user_types if user_types is not None else StringTable(),
        )

    @classmethod
    def from_records(cls, records: Sequence[OpRecord]) -> "OpBatch":
        """Columnarise a sequence of :class:`OpRecord` (inverse of
        :meth:`to_records`; think rows cannot appear in records)."""
        n = len(records)
        batch = cls.empty(n)
        paths, categories, user_types = (
            batch.paths, batch.categories, batch.user_types
        )
        for i, record in enumerate(records):
            batch.kinds[i] = OP_KIND_CODES[record.op]
            batch.plan_ids[i] = -1
            batch.sizes[i] = record.size
            batch.flags[i] = 0
            batch.path_idx[i] = paths.intern(record.path)
            batch.category_idx[i] = categories.intern(record.category_key)
            batch.user_ids[i] = record.user_id
            batch.session_ids[i] = record.session_id
            batch.user_type_idx[i] = user_types.intern(record.user_type)
            batch.start_us[i] = record.start_us
            batch.response_us[i] = record.response_us
        return batch

    # -- slicing ---------------------------------------------------------------

    def select(self, index) -> "OpBatch":
        """Row subset (slice, boolean mask or integer indices).

        String tables are shared; a slice index yields column *views*,
        fancy indices copy (NumPy semantics).
        """
        return OpBatch(
            kinds=self.kinds[index],
            plan_ids=self.plan_ids[index],
            sizes=self.sizes[index],
            flags=self.flags[index],
            path_idx=self.path_idx[index],
            category_idx=self.category_idx[index],
            user_ids=self.user_ids[index],
            session_ids=self.session_ids[index],
            user_type_idx=self.user_type_idx[index],
            start_us=self.start_us[index],
            response_us=self.response_us[index],
            think_us=(self.think_us[index] if self.think_us is not None
                      else None),
            paths=self.paths,
            categories=self.categories,
            user_types=self.user_types,
        )

    # -- bridges ---------------------------------------------------------------

    def kind_names(self) -> np.ndarray:
        """The kind column as strings (diagnostics and tests)."""
        return _KIND_NAME_ARRAY[self.kinds]

    def to_records(self) -> list[OpRecord]:
        """Bridge to scalar :class:`OpRecord` rows (1:1 with op rows;
        the ``think_us`` column, if any, is not part of records).

        ``-1`` string indices become ``""`` (the :class:`OpRecord`
        convention).
        """
        paths = self.paths.values()
        categories = self.categories.values()
        user_types = self.user_types.values()
        return [
            OpRecord(
                user_id=int(self.user_ids[i]),
                user_type=user_types[ti] if (ti := int(self.user_type_idx[i])) >= 0 else "",
                session_id=int(self.session_ids[i]),
                op=OP_KIND_NAMES[self.kinds[i]],
                path=paths[pi] if (pi := int(self.path_idx[i])) >= 0 else "",
                category_key=categories[ci] if (ci := int(self.category_idx[i])) >= 0 else "",
                size=int(self.sizes[i]),
                start_us=float(self.start_us[i]),
                response_us=float(self.response_us[i]),
            )
            for i in range(len(self))
        ]

    def iter_session_ops(self) -> Iterator:
        """Bridge to scalar :class:`~repro.core.synthesis.SessionOp`\\ s.

        Reconstructs the synthesized stream exactly — each op followed
        by its think op (from the ``think_us`` column), ``None`` for
        absent strings/plan ids, and ``OpenFlags`` values — so a
        columnar session can be compared element-for-element against
        :meth:`~repro.core.synthesis.SessionGenerator.generate_session`.
        """
        from .synthesis import SessionOp  # cycle: synthesis imports opbatch

        paths = self.paths.values()
        categories = self.categories.values()
        think = self.think_us
        for i in range(len(self)):
            plan_id = int(self.plan_ids[i])
            path_i = int(self.path_idx[i])
            cat_i = int(self.category_idx[i])
            yield SessionOp(
                kind=OP_KIND_NAMES[self.kinds[i]],
                plan_id=plan_id if plan_id >= 0 else None,
                path=paths[path_i] if path_i >= 0 else None,
                category_key=categories[cat_i] if cat_i >= 0 else None,
                size=int(self.sizes[i]),
                flags=OpenFlags(int(self.flags[i])),
            )
            if think is not None:
                yield SessionOp("think", size=int(think[i]))
