"""The workload generator facade — Figure 4.1 as one object.

``WorkloadGenerator`` wires the three components exactly the way the
thesis's block diagram does:

1. the GDS (:class:`~repro.core.gds.DistributionSpecifier`) registers every
   file and usage distribution and produces CDF tables;
2. the FSC (:class:`~repro.core.fsc.FileSystemCreator`) creates the initial
   file system from the file-distribution tables;
3. the USIM — staged as *synthesize* then *execute*: a pure
   :class:`~repro.core.synthesis.SessionGenerator` draws file I/O
   operations from the usage-distribution tables, and an
   :class:`~repro.core.execution.ExecutionBackend` replays them — inside
   the discrete-event simulation (simulated SUN NFS, local-disk or
   AFS-like backends), through the engine-free analytic ``fast`` replay,
   or against a real directory.

Sampling in both the FSC and the USIM goes through the GDS's CDF tables —
not the parametric forms — matching the thesis's pipeline (and its
section 4.2 warning about table memory, which :meth:`memory_report`
surfaces).  Point-mass distributions are kept exact rather than tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

from ..distributions import CdfTable, Constant, Distribution, RandomStreams
from ..obs.observer import NULL_OBSERVER
from ..nfs import (
    AfsLikeFileSystem,
    FileServer,
    LocalDiskFileSystem,
    NetworkLink,
    NfsClient,
    NfsTiming,
    SUN_NFS_TIMING,
)
from ..sim import Engine
from ..vfs import FileSystemAPI, LocalFileSystem, MemoryFileSystem
from .analyzer import UsageAnalyzer
from .arrivals import ArrivalModel
from .execution import (
    ColumnarReplayBackend,
    DesBackend,
    ExecutionBackend,
    FastReplayBackend,
    UserSessions,
)
from .fsc import FileSystemCreator, FileSystemLayout
from .gds import DistributionSpecifier
from .oplog import OpSink, UsageLog
from .spec import UserTypeSpec, WorkloadSpec
from .synthesis import SessionGenerator
from .usim import RealRunner

__all__ = [
    "WorkloadGenerator",
    "RunResult",
    "SimulationHandle",
    "TableSampler",
    "SIM_BACKENDS",
    "FAST_BACKENDS",
    "RUN_BACKENDS",
]

SIM_BACKENDS = ("nfs", "local", "afs")
"""Discrete-event simulation backends (full queueing fidelity)."""

FAST_BACKENDS = ("fast", "fast-columnar")
"""Engine-free analytic replays: scalar per-op, and columnar
(array-native batches through the same service model)."""

RUN_BACKENDS = SIM_BACKENDS + FAST_BACKENDS
"""Everything :meth:`WorkloadGenerator.run_simulated` accepts: the DES
backends plus the engine-free analytic replays."""


class TableSampler:
    """A CDF-table-backed sampler with a ``Distribution``-like surface.

    Wraps a :class:`~repro.distributions.CdfTable` so the USIM and FSC can
    draw variates from GDS output while code that only inspects the mean
    keeps working.
    """

    def __init__(self, table: CdfTable, source: Distribution):
        self.table = table
        self.source = source

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Inverse-transform draw from the table."""
        return self.table.sample(rng, size)

    def mean(self) -> float:
        """Mean of the tabulated distribution."""
        return self.table.mean()

    def describe(self) -> str:
        """Summary mentioning both the table and its source."""
        return f"table({self.table.n_points}) of {self.source.describe()}"


@dataclass
class SimulationHandle:
    """Everything a simulated run is built from."""

    engine: Engine
    client: object
    server: FileServer
    network: NetworkLink | None
    store: MemoryFileSystem
    backend: str


@dataclass
class RunResult:
    """Outcome of one workload run."""

    spec: WorkloadSpec
    layout: FileSystemLayout
    log: UsageLog
    backend: str
    simulated_duration_us: float = 0.0
    handle: SimulationHandle | None = None

    @property
    def analyzer(self) -> UsageAnalyzer:
        """A fresh analyzer over this run's log and layout."""
        if not isinstance(self.log, UsageLog):
            raise TypeError(
                f"this run recorded into a {type(self.log).__name__}, not a "
                "UsageLog; the analyzer needs the full operation record "
                "(run without a custom log sink, or with collect_ops=True)"
            )
        return UsageAnalyzer(self.log, self.layout)


class WorkloadGenerator:
    """GDS → FSC → USIM, wired per Figure 4.1."""

    def __init__(self, spec: WorkloadSpec, table_points: int = 257):
        self.spec = spec
        self.gds = DistributionSpecifier(table_points=table_points)
        self.streams = RandomStreams(spec.seed)
        self._register_distributions()
        self._tabulated_types: list[UserTypeSpec] | None = None
        self._tabulated_by_name: dict[str, UserTypeSpec] | None = None
        self._assignment: list[UserTypeSpec] | None = None
        self._manifest_layout: FileSystemLayout | None = None

    # -- GDS wiring -------------------------------------------------------------

    def _register_distributions(self) -> None:
        for cat_spec in self.spec.file_categories:
            self.gds.specify(
                f"file-size:{cat_spec.category.key}",
                cat_spec.size_distribution,
            )
        for user_type in self.spec.user_types:
            prefix = f"user:{user_type.name}"
            self.gds.specify(f"{prefix}:think-time", user_type.think_time)
            self.gds.specify(f"{prefix}:access-size", user_type.access_size)
            for usage in user_type.usage:
                key = usage.category.key
                self.gds.specify(f"{prefix}:apb:{key}", usage.access_per_byte)
                self.gds.specify(f"{prefix}:files:{key}", usage.file_count)
                self.gds.specify(f"{prefix}:size:{key}", usage.file_size)

    def _as_sampler(self, name: str):
        """Table-backed sampler; point masses stay exact."""
        dist = self.gds.get(name)
        if isinstance(dist, Constant):
            return dist
        return TableSampler(self.gds.table(name), dist)

    def _tabulate_user_types(self) -> list[UserTypeSpec]:
        """User types whose distributions sample from GDS CDF tables."""
        if self._tabulated_types is None:
            rebuilt = []
            for user_type in self.spec.user_types:
                prefix = f"user:{user_type.name}"
                usage = tuple(
                    replace(
                        u,
                        access_per_byte=self._as_sampler(
                            f"{prefix}:apb:{u.category.key}"),
                        file_count=self._as_sampler(
                            f"{prefix}:files:{u.category.key}"),
                        file_size=self._as_sampler(
                            f"{prefix}:size:{u.category.key}"),
                    )
                    for u in user_type.usage
                )
                rebuilt.append(
                    replace(
                        user_type,
                        usage=usage,
                        think_time=self._as_sampler(f"{prefix}:think-time"),
                        access_size=self._as_sampler(f"{prefix}:access-size"),
                    )
                )
            self._tabulated_types = rebuilt
        return self._tabulated_types

    def _tabulated_by_type_name(self) -> dict[str, UserTypeSpec]:
        """Memoized name → tabulated-type lookup (hot in fleet shards)."""
        if self._tabulated_by_name is None:
            self._tabulated_by_name = {
                t.name: t for t in self._tabulate_user_types()
            }
        return self._tabulated_by_name

    def _assigned_user_types(self) -> list[UserTypeSpec]:
        """Memoized :meth:`WorkloadSpec.assign_user_types`.

        The assignment is a deterministic largest-remainder apportionment
        — a pure function of the spec — so repeated
        ``run_simulated``/fleet-shard calls on one generator can reuse
        it instead of recomputing the whole population's types each
        time.
        """
        if self._assignment is None:
            self._assignment = self.spec.assign_user_types()
        return self._assignment

    def memory_report(self) -> dict[str, int]:
        """CDF-table footprint (the section 4.2 growth concern)."""
        return self.gds.memory_report()

    # -- FSC -----------------------------------------------------------------------

    def create_file_system(
        self, fs: FileSystemAPI,
        materialize_users: "set[int] | None" = None,
        materialize_shared: bool = True,
    ) -> FileSystemLayout:
        """Run the FSC against ``fs`` using GDS file-size tables.

        ``materialize_users`` / ``materialize_shared`` are forwarded to
        :meth:`~repro.core.fsc.FileSystemCreator.create`: the manifest
        always covers the whole population, but files are only
        physically created for the given users (and, for the engine-free
        backends, not at all).
        """
        samplers = {
            cat_spec.category.key: self._as_sampler(
                f"file-size:{cat_spec.category.key}")
            for cat_spec in self.spec.file_categories
        }
        creator = FileSystemCreator(
            self.spec, streams=self.streams, size_samplers=samplers
        )
        return creator.create(fs, materialize_users=materialize_users,
                              materialize_shared=materialize_shared)

    # -- USIM, simulated ---------------------------------------------------------------

    def build_simulation(self, backend: str = "nfs",
                         timing: NfsTiming | None = None) -> SimulationHandle:
        """Construct engine + server + network + client for a DES backend."""
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"backend must be one of {SIM_BACKENDS}, got {backend!r}"
            )
        engine = Engine()
        timing = timing or SUN_NFS_TIMING
        if backend == "local":
            client = LocalDiskFileSystem(engine, timing=timing)
            return SimulationHandle(
                engine=engine, client=client, server=client.server,
                network=None, store=client.server.store, backend=backend,
            )
        server = FileServer(engine, timing)
        network = NetworkLink(engine, timing.network)
        if backend == "nfs":
            client: object = NfsClient(engine, server, network, timing)
        else:
            client = AfsLikeFileSystem(engine, server, network, timing)
        return SimulationHandle(
            engine=engine, client=client, server=server, network=network,
            store=server.store, backend=backend,
        )

    # -- the staged pipeline -----------------------------------------------------------

    def plan_users(
        self, user_ids: Iterable[int] | None = None
    ) -> tuple[list[UserTypeSpec], list[int]]:
        """Stage 1 (plan): the population's type assignment and selection.

        Returns ``(assignment, selected)`` where ``assignment[u]`` is
        user ``u``'s type for the *whole* population and ``selected`` is
        the sorted subset of user ids this run will execute (everyone
        when ``user_ids`` is None — the fleet layer passes shards).
        """
        assignment = self._assigned_user_types()
        if user_ids is None:
            selected = list(range(len(assignment)))
        else:
            selected = sorted(set(int(u) for u in user_ids))
            bad = [u for u in selected if not (0 <= u < len(assignment))]
            if bad:
                raise ValueError(
                    f"user_ids outside [0, {len(assignment)}): {bad}"
                )
        return assignment, selected

    def iter_synthesized_users(
        self,
        layout: FileSystemLayout,
        selected: Iterable[int],
        assignment: "list[UserTypeSpec] | None" = None,
        access_pattern: str = "sequential",
        phase_model_factory=None,
        reuse_kernels: bool = False,
    ) -> Iterator[SessionGenerator]:
        """Stage 2 (synthesize), lazily: generators yielded one at a time.

        Each user's :class:`~repro.core.synthesis.SessionGenerator`
        carries its own batched samplers and forked random streams, so a
        million-user population must not hold them all at once.  Because
        synthesis is a pure function of ``(root seed, user id)``, the
        order and content of every draw is identical whether generators
        are built eagerly or on demand — the engine-free backends
        consume this iterator directly and stay flat in memory.

        ``reuse_kernels=True`` pools one kernel per user type and
        rebinds it to each successive user
        (:meth:`~repro.core.synthesis.SessionGenerator.rebind_user`):
        the precomputed per-category sampler tuples, chunk buffers and
        think/slot samplers are reset, not reconstructed, which removes
        most of the per-user setup cost.  A rebound kernel draws
        byte-identical streams (each user's randomness comes only from
        its own ``user-{id}`` fork), but the *same object* is yielded
        every time — callers must fully consume one user before
        advancing, which the engine-free backends do; the DES
        materialises all users at once and must leave this False.
        """
        if assignment is None:
            assignment = self._assigned_user_types()
        tabulated = self._tabulated_by_type_name()
        kernels: dict[str, SessionGenerator] = {}
        for user_id in selected:
            type_name = assignment[user_id].name
            phase = phase_model_factory() if phase_model_factory else None
            kernel = kernels.get(type_name) if reuse_kernels else None
            if kernel is None:
                kernel = SessionGenerator(
                    tabulated[type_name],
                    layout,
                    self.streams,
                    user_id=user_id,
                    access_pattern=access_pattern,
                    phase_model=phase,
                )
                if reuse_kernels:
                    kernels[type_name] = kernel
            else:
                kernel.rebind_user(user_id, phase_model=phase)
            yield kernel

    def synthesize_users(
        self,
        layout: FileSystemLayout,
        selected: Iterable[int],
        assignment: "list[UserTypeSpec] | None" = None,
        access_pattern: str = "sequential",
        phase_model_factory=None,
    ) -> list[SessionGenerator]:
        """Stage 2 (synthesize): one pure op-stream generator per user.

        The returned :class:`~repro.core.synthesis.SessionGenerator`\\ s
        sample from GDS CDF tables through batched per-quantity streams;
        they carry no timing and can be drained directly (``for op in
        g.generate_session(0)``) or handed to an execution backend.
        (Eager list form of :meth:`iter_synthesized_users`.)
        """
        return list(self.iter_synthesized_users(
            layout, selected, assignment,
            access_pattern=access_pattern,
            phase_model_factory=phase_model_factory,
        ))

    def run_simulated(
        self,
        sessions_per_user: int = 1,
        backend: str = "nfs",
        timing: NfsTiming | None = None,
        access_pattern: str = "sequential",
        phase_model_factory=None,
        time_limit_us: float | None = None,
        user_ids: Iterable[int] | None = None,
        log: OpSink | None = None,
        arrivals: ArrivalModel | None = None,
        observer=None,
    ) -> RunResult:
        """Full experiment: plan, synthesize, then execute on a backend.

        The file system is created on the backend's store *before* time
        starts (setup is not part of the measured workload, exactly as the
        thesis separates FSC from USIM).  Every virtual user runs
        ``sessions_per_user`` login sessions.

        ``backend`` selects the execution stage: ``nfs``/``local``/``afs``
        run the discrete-event simulation (shared resources, queueing,
        full timing fidelity); ``fast`` replays the identical op stream
        through :class:`~repro.core.execution.FastReplayBackend`,
        charging analytic mean service times with no engine — several
        times the ops/s when only the workload *content* matters.

        ``user_ids`` restricts the run to a subset of the population (the
        fleet layer's shards).  Each selected user keeps the identity —
        type assignment, home directory, random streams — it would have
        in the full run, and only the selected users' files are
        materialised on the backend store.  ``log`` lets the caller
        supply the :class:`~repro.core.oplog.OpSink` records go to; note
        :attr:`RunResult.analyzer` needs a real ``UsageLog``.

        ``arrivals`` attaches a temporal load model: each user's
        first-login offset and inter-session gaps are resolved up front
        (one :class:`~repro.core.arrivals.SessionSchedule` per user,
        from the user's own named streams) and handed to the backend —
        the DES delays the user process, the fast paths seed the user's
        clock.  The op stream is byte-identical with or without
        arrivals; only the timeline moves.

        ``observer`` attaches a :class:`~repro.obs.RunObserver`: stage
        spans around plan/synthesize/execute, an instrumented
        pass-through in front of ``log``, and live progress ticks.  The
        observer only *reads* the event stream — it consumes no
        randomness and alters no recorded byte, so an observed run's op
        stream is identical to an unobserved one.  When None (the
        default) the shared no-op singleton is used and the pipeline
        runs exactly the uninstrumented code paths.
        """
        if sessions_per_user < 1:
            raise ValueError("sessions_per_user must be >= 1")
        if backend not in RUN_BACKENDS:
            raise ValueError(
                f"backend must be one of {RUN_BACKENDS}, got {backend!r}"
            )
        obs = observer if observer is not None else NULL_OBSERVER
        handle = None
        executor: ExecutionBackend
        with obs.stage("plan"):
            assignment, selected = self.plan_users(user_ids)
            if backend in FAST_BACKENDS:
                # No store is ever read: materialise nothing at all,
                # just sample the manifest (sizes are drawn identically
                # either way, so the layout — and hence the op stream —
                # matches the DES run bit for bit).  Memoized: the
                # manifest is a pure function of the spec's seed, so
                # repeated engine-free runs (bench repeats, fleet
                # probes) reuse the first build instead of redrawing
                # the whole population's file sizes.
                if self._manifest_layout is None:
                    self._manifest_layout = self.create_file_system(
                        MemoryFileSystem(), materialize_users=set(),
                        materialize_shared=False,
                    )
                layout = self._manifest_layout
                executor = (ColumnarReplayBackend(timing)
                            if backend == "fast-columnar"
                            else FastReplayBackend(timing))
            else:
                handle = self.build_simulation(backend, timing)
                layout = self.create_file_system(
                    handle.store,
                    materialize_users=(None if user_ids is None
                                       else set(selected)),
                )
                executor = DesBackend(handle.engine, handle.client)
        if log is None:
            log = UsageLog()
        task_iter = (
            UserSessions(
                g, sessions_per_user,
                schedule=(arrivals.schedule(self.streams, g.user_id,
                                            sessions_per_user)
                          if arrivals is not None else None),
            )
            # The "synthesize" span times generator *construction*; the
            # sessions themselves are drawn lazily while the executor
            # runs, so their sampling cost lands in "execute".
            for g in obs.timed_iter(
                "synthesize",
                self.iter_synthesized_users(
                    layout, selected, assignment,
                    access_pattern=access_pattern,
                    phase_model_factory=phase_model_factory,
                    # The engine-free backends drain one user fully
                    # before pulling the next, so a per-type kernel can
                    # be rebound instead of rebuilt; the DES holds every
                    # user at once and needs distinct generators.
                    reuse_kernels=backend in FAST_BACKENDS,
                ),
                tick_users=True,
            )
        )
        # The engine-free backends run users one after another, so they
        # take the lazy iterator and never hold more than one user's
        # generator — the flat-memory property million-user stream runs
        # rely on.  The DES interleaves every user on one engine and
        # needs them all alive; it gets the materialised list.
        tasks: "Iterable[UserSessions]" = (
            task_iter if backend in FAST_BACKENDS else list(task_iter)
        )
        sink = obs.wrap_sink(log)
        with obs.stage("execute"):
            duration_us = executor.execute(
                tasks, sink, time_limit_us=time_limit_us,
            )
        if obs.enabled:
            # Fold the sink's deferred batch accounting now, so the
            # registry is complete the moment this run returns.
            sink.flush()
        return RunResult(
            spec=self.spec,
            layout=layout,
            log=log,
            backend=backend,
            simulated_duration_us=duration_us,
            handle=handle,
        )

    # -- USIM, real --------------------------------------------------------------------

    def run_real(
        self,
        fs: FileSystemAPI | str,
        sessions_per_user: int = 1,
        sleep_thinks: bool = False,
        access_pattern: str = "sequential",
    ) -> RunResult:
        """Drive a real ``FileSystemAPI`` (or a directory path) directly.

        Users run one after another (a single workstation replaying
        sessions); response times are wall-clock microseconds.
        """
        if sessions_per_user < 1:
            raise ValueError("sessions_per_user must be >= 1")
        if isinstance(fs, str):
            fs = LocalFileSystem(fs)
        layout = self.create_file_system(fs)
        log = UsageLog()
        tabulated = self._tabulated_by_type_name()
        for user_id, user_type in enumerate(self._assigned_user_types()):
            generator = SessionGenerator(
                tabulated[user_type.name],
                layout,
                self.streams,
                user_id=user_id,
                access_pattern=access_pattern,
            )
            RealRunner(fs, generator, log,
                       sleep_thinks=sleep_thinks).run_sessions(
                sessions_per_user
            )
        return RunResult(
            spec=self.spec, layout=layout, log=log, backend="real"
        )
