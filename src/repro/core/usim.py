"""The User Simulator (USIM).

Section 4.1.3: the USIM "simulates workload on a terminal or workstation,
i.e., a series of users logging in and using the computer", repeatedly
selecting "a file access operation to be performed, the file on which to
perform the operation, the amount of this file to access, and the time
delay to the next operation".

The implementation separates two concerns:

* :class:`SessionGenerator` — turns a user type's usage distributions into
  a *stream of system-call operations* for one login session.  Pure and
  deterministic given its random streams; this is where the thesis's
  modelling assumptions live (independent selection, sequential access,
  open-before-read/write, per-category behaviour).
* Executors — :func:`simulated_user_process` replays a stream inside the
  discrete-event simulation against a simulated file-system client and
  measures response times off the engine clock; :class:`RealRunner`
  replays it against a real (or in-memory) ``FileSystemAPI`` and measures
  wall-clock time, the thesis's "difference of before and after calling a
  system call".

Extensions beyond the thesis's minimum (its section 6.2 future work):

* ``access_pattern="random"`` switches the per-file access from purely
  sequential to uniform random offsets (the database-style behaviour the
  thesis flags as unsupported);
* :class:`PhaseModel` gives a user time-varying behaviour via a two-state
  Markov chain (I/O-bound vs CPU-bound think-time multipliers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..distributions import RandomStreams
from ..sim import Delay, Engine
from ..vfs import FileSystemAPI, OpenFlags, Whence
from .fsc import FileSystemLayout
from .oplog import OpRecord, OpSink, SessionRecord
from .spec import FileCategory, UsageSpec, UserTypeSpec, UseType

__all__ = [
    "SessionOp",
    "PhaseModel",
    "SessionGenerator",
    "simulated_user_process",
    "RealRunner",
]


@dataclass(frozen=True)
class SessionOp:
    """One element of a session's operation stream.

    ``size`` is overloaded per kind: file size for open/creat, byte count
    for read/write/listdir, absolute offset for lseek, microseconds for
    think.
    """

    kind: str                       # open|creat|read|write|lseek|close|
    #                                 unlink|stat|listdir|think
    plan_id: int | None = None      # links data ops to their open file
    path: str | None = None
    category_key: str | None = None
    size: int = 0
    flags: OpenFlags = OpenFlags.RDONLY


class PhaseModel:
    """Two-state Markov modulation of think time (section 6.2 extension).

    State ``io`` uses the base think-time distribution; state ``cpu``
    multiplies it by ``cpu_multiplier`` (the user is computing, not doing
    I/O).  Transition probabilities are per-operation.
    """

    def __init__(self, cpu_multiplier: float = 8.0,
                 p_enter_cpu: float = 0.05, p_exit_cpu: float = 0.3):
        if cpu_multiplier < 0:
            raise ValueError("cpu_multiplier must be >= 0")
        for name, p in (("p_enter_cpu", p_enter_cpu), ("p_exit_cpu", p_exit_cpu)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability")
        self.cpu_multiplier = cpu_multiplier
        self.p_enter_cpu = p_enter_cpu
        self.p_exit_cpu = p_exit_cpu
        self.state = "io"

    def multiplier(self, rng: np.random.Generator) -> float:
        """Advance the chain one step; return the current multiplier."""
        if self.state == "io":
            if rng.random() < self.p_enter_cpu:
                self.state = "cpu"
        else:
            if rng.random() < self.p_exit_cpu:
                self.state = "io"
        return self.cpu_multiplier if self.state == "cpu" else 1.0


class _FilePlan:
    """A per-file script: open → data ops → close (+unlink for TEMP)."""

    def __init__(self, plan_id: int, ops: list[SessionOp]):
        self.plan_id = plan_id
        self._ops = ops
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._ops)

    def pop(self) -> SessionOp:
        op = self._ops[self._next]
        self._next += 1
        return op


class SessionGenerator:
    """Generates login-session operation streams for one virtual user.

    Determinism contract (load-bearing for :mod:`repro.fleet`): all of a
    user's randomness comes from ``streams.fork(f"user-{user_id}")``, a
    family derived from the *root* seed and the user id alone.  A user's
    operation stream is therefore identical no matter which other users
    run alongside it or which worker process it runs in — this is what
    makes sharded fleet runs aggregate bit-for-bit to the single-process
    result.
    """

    def __init__(
        self,
        user_type: UserTypeSpec,
        layout: FileSystemLayout,
        streams: RandomStreams,
        user_id: int,
        access_pattern: str = "sequential",
        phase_model: PhaseModel | None = None,
    ):
        if access_pattern not in ("sequential", "random"):
            raise ValueError(
                f"access_pattern must be sequential|random, got "
                f"{access_pattern!r}"
            )
        self.user_type = user_type
        self.layout = layout
        self.user_id = user_id
        self.access_pattern = access_pattern
        self.phase_model = phase_model
        base = streams.fork(f"user-{user_id}")
        self._rng_select = base.get("select")
        self._rng_usage = base.get("usage")
        self._rng_access = base.get("access-size")
        self._rng_think = base.get("think")
        self._plan_counter = 0

    # -- sampling helpers --------------------------------------------------------

    def _sample_count(self, usage: UsageSpec) -> int:
        return max(1, int(round(float(usage.file_count.sample(self._rng_usage)))))

    def _sample_access_budget(self, usage: UsageSpec, file_size: int) -> int:
        ratio = max(0.0, float(usage.access_per_byte.sample(self._rng_usage)))
        return int(round(ratio * file_size))

    def _sample_chunk(self, remaining: int) -> int:
        raw = float(self.user_type.access_size.sample(self._rng_access))
        return max(1, min(int(round(raw)), remaining))

    def _sample_think_us(self) -> int:
        raw = max(0.0, float(self.user_type.think_time.sample(self._rng_think)))
        if self.phase_model is not None:
            raw *= self.phase_model.multiplier(self._rng_think)
        return int(round(raw))

    # -- per-category plan construction ------------------------------------------

    def _data_ops(self, plan_id: int, budget: int, file_size: int,
                  write_fraction: float,
                  category_key: str | None = None) -> list[SessionOp]:
        """Chunked read/write ops consuming ``budget`` bytes of a file.

        Sequential mode walks the file, wrapping to offset 0 at EOF (the
        thesis models sequential access only); random mode seeks to a
        uniform offset before every chunk.
        """
        ops: list[SessionOp] = []
        if budget <= 0 or file_size <= 0:
            return ops
        position = 0
        remaining = budget
        while remaining > 0:
            if self.access_pattern == "random":
                position = int(self._rng_access.integers(0, file_size))
                ops.append(SessionOp("lseek", plan_id=plan_id, size=position,
                                     category_key=category_key))
            elif position >= file_size:
                position = 0
                ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                     category_key=category_key))
            chunk = self._sample_chunk(min(remaining, file_size - position
                                           if self.access_pattern == "sequential"
                                           else remaining))
            chunk = min(chunk, file_size - position)
            if chunk <= 0:
                position = 0
                continue
            is_write = self._rng_usage.random() < write_fraction
            ops.append(
                SessionOp(
                    "write" if is_write else "read",
                    plan_id=plan_id,
                    size=chunk,
                    category_key=category_key,
                )
            )
            position += chunk
            remaining -= chunk
        return ops

    def _write_out_ops(self, plan_id: int, target_size: int,
                       category_key: str | None = None) -> list[SessionOp]:
        """Sequential writes creating ``target_size`` bytes of fresh file."""
        ops: list[SessionOp] = []
        written = 0
        while written < target_size:
            chunk = self._sample_chunk(target_size - written)
            ops.append(SessionOp("write", plan_id=plan_id, size=chunk,
                                 category_key=category_key))
            written += chunk
        return ops

    def _plan_for_existing(self, usage: UsageSpec, path: str,
                           file_size: int) -> _FilePlan:
        """RDONLY / RD-WRT plan over a file the FSC created."""
        category = usage.category
        plan_id = self._next_plan_id()
        budget = self._sample_access_budget(usage, file_size)
        write_fraction = 0.5 if category.use is UseType.RD_WRT else 0.0
        mode = OpenFlags.RDWR if category.writes else OpenFlags.RDONLY
        ops = [
            SessionOp("open", plan_id=plan_id, path=path,
                      category_key=category.key, size=file_size, flags=mode)
        ]
        ops.extend(self._data_ops(plan_id, budget, file_size, write_fraction,
                                  category_key=category.key))
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_new(self, usage: UsageSpec, path: str,
                      temporary: bool) -> _FilePlan:
        """NEW / TEMP plan: create, write out, (re-read and unlink)."""
        category = usage.category
        plan_id = self._next_plan_id()
        target_size = max(
            1, int(round(float(usage.file_size.sample(self._rng_usage))))
        )
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        ops = [
            SessionOp("creat", plan_id=plan_id, path=path,
                      category_key=category.key, size=target_size,
                      flags=flags)
        ]
        ops.extend(self._write_out_ops(plan_id, target_size,
                                       category_key=category.key))
        # Spend the rest of the category's access budget re-reading the
        # fresh file: Table 5.2 gives NEW files 2.36 accesses per byte and
        # TEMP files 2.00, i.e. well beyond the single write-out pass.
        budget = self._sample_access_budget(usage, target_size)
        read_budget = max(0, budget - target_size)
        if read_budget > 0:
            ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                 category_key=category.key))
            ops.extend(
                self._data_ops(plan_id, read_budget, target_size, 0.0,
                               category_key=category.key)
            )
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        if temporary:
            ops.append(SessionOp("unlink", path=path,
                                 category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_directory(self, usage: UsageSpec, path: str,
                            dir_size: int) -> _FilePlan:
        """DIR plan: stat once, then one readdir per whole-directory pass."""
        category = usage.category
        plan_id = self._next_plan_id()
        ratio = max(0.0, float(usage.access_per_byte.sample(self._rng_usage)))
        passes = max(1, int(round(ratio)))
        ops = [SessionOp("stat", path=path, category_key=category.key,
                         plan_id=plan_id, size=dir_size)]
        for _ in range(passes):
            ops.append(SessionOp("listdir", path=path,
                                 category_key=category.key, size=dir_size))
        return _FilePlan(plan_id, ops)

    def _next_plan_id(self) -> int:
        self._plan_counter += 1
        return self._plan_counter

    # -- session assembly ------------------------------------------------------------

    def _build_plans(self, session_id: int) -> list[_FilePlan]:
        plans: list[_FilePlan] = []
        for usage in self.user_type.usage:
            if self._rng_select.random() >= usage.fraction_of_users:
                continue
            category = usage.category
            count = self._sample_count(usage)
            if category.creates_files:
                temporary = category.use is UseType.TEMP
                home = self.layout.user_home(self.user_id)
                prefix = "tmp" if temporary else "new"
                for k in range(count):
                    path = (
                        f"{home}/{prefix}-s{session_id:04d}-"
                        f"p{self._plan_counter:05d}-{k}"
                    )
                    plans.append(self._plan_for_new(usage, path, temporary))
                continue
            pool = self.layout.files_for(category, self.user_id)
            if not pool:
                continue
            chosen_idx = self._rng_select.choice(
                len(pool), size=min(count, len(pool)), replace=False
            )
            for idx in np.atleast_1d(chosen_idx):
                record = pool[int(idx)]
                if category.is_directory:
                    plans.append(
                        self._plan_for_directory(usage, record.path,
                                                 record.size)
                    )
                else:
                    plans.append(
                        self._plan_for_existing(usage, record.path,
                                                record.size)
                    )
        return plans

    def generate_session(self, session_id: int) -> Iterator[SessionOp]:
        """Yield the operation stream of one login session.

        File plans are interleaved by independent random selection among
        the currently open files (the thesis's independence assumption),
        with at most ``user_type.max_open_files`` concurrently open.
        A think-time operation follows every file operation.
        """
        pending = self._build_plans(session_id)
        active: list[_FilePlan] = []
        max_open = self.user_type.max_open_files
        while pending or active:
            while pending and len(active) < max_open:
                active.append(pending.pop(0))
            if not active:
                break
            slot = int(self._rng_select.integers(0, len(active)))
            plan = active[slot]
            op = plan.pop()
            yield op
            if plan.exhausted:
                active.pop(slot)
            think = self._sample_think_us()
            yield SessionOp("think", size=think)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class _SessionAccounting:
    """Accumulates the per-session measures the analyzer consumes."""

    def __init__(self, user_id: int, user_type: str, session_id: int,
                 start_us: float):
        self.user_id = user_id
        self.user_type = user_type
        self.session_id = session_id
        self.start_us = start_us
        self.file_sizes: dict[str, int] = {}
        self.bytes_accessed = 0
        self.categories: set[str] = set()

    def saw_file(self, path: str, size: int, category_key: str | None) -> None:
        # A session-created file's size grows as it is written; keep the max.
        self.file_sizes[path] = max(self.file_sizes.get(path, 0), size)
        if category_key:
            self.categories.add(category_key)

    def accessed(self, nbytes: int) -> None:
        self.bytes_accessed += nbytes

    def finish(self, end_us: float) -> SessionRecord:
        return SessionRecord(
            user_id=self.user_id,
            user_type=self.user_type,
            session_id=self.session_id,
            start_us=self.start_us,
            end_us=end_us,
            files_referenced=len(self.file_sizes),
            bytes_accessed=self.bytes_accessed,
            file_bytes_referenced=sum(self.file_sizes.values()),
            categories=tuple(sorted(self.categories)),
        )


_WRITE_PAYLOAD = bytes(64 * 1024)


def _payload(nbytes: int) -> bytes:
    """Zero bytes to write; sliced from a shared buffer for speed."""
    if nbytes <= len(_WRITE_PAYLOAD):
        return _WRITE_PAYLOAD[:nbytes]
    return bytes(nbytes)


def simulated_user_process(
    engine: Engine,
    client,
    generator: SessionGenerator,
    sessions: int,
    log: OpSink,
    inter_session_us: float = 0.0,
):
    """A DES process: one virtual user running ``sessions`` login sessions.

    ``client`` is any simulated file-system client
    (:class:`~repro.nfs.NfsClient`, local-disk, AFS-like).  Response time
    of every call is the engine-clock delta around it; think operations
    become plain delays.  ``log`` is any :class:`~repro.core.oplog.OpSink`
    — a full :class:`~repro.core.oplog.UsageLog` or an online accumulator.
    """
    user_id = generator.user_id
    type_name = generator.user_type.name
    for session_id in range(sessions):
        accounting = _SessionAccounting(user_id, type_name, session_id,
                                        engine.now)
        fd_by_plan: dict[int, int] = {}
        path_by_plan: dict[int, str] = {}
        for op in generator.generate_session(session_id):
            if op.kind == "think":
                if op.size > 0:
                    yield Delay(op.size)
                continue
            started = engine.now
            moved = op.size
            if op.kind in ("open", "creat"):
                # ``op.size`` is the file's size: the FSC-recorded size for
                # opens, the target write-out size for creates.
                fd = yield from client.open(op.path, op.flags)
                fd_by_plan[op.plan_id] = fd
                path_by_plan[op.plan_id] = op.path
                accounting.saw_file(op.path, op.size, op.category_key)
                moved = 0
            elif op.kind == "read":
                data = yield from client.read(fd_by_plan[op.plan_id], op.size)
                moved = len(data)
                accounting.accessed(moved)
            elif op.kind == "write":
                moved = yield from client.write(
                    fd_by_plan[op.plan_id], _payload(op.size)
                )
                accounting.accessed(moved)
            elif op.kind == "lseek":
                yield from client.lseek(fd_by_plan[op.plan_id], op.size,
                                        Whence.SET)
                moved = 0
            elif op.kind == "close":
                yield from client.close(fd_by_plan.pop(op.plan_id))
                moved = 0
            elif op.kind == "unlink":
                yield from client.unlink(op.path)
                moved = 0
            elif op.kind == "stat":
                yield from client.stat(op.path)
                accounting.saw_file(op.path, op.size, op.category_key)
                moved = 0
            elif op.kind == "listdir":
                yield from client.listdir(op.path)
                accounting.accessed(op.size)
            else:  # pragma: no cover - generator only emits known kinds
                raise ValueError(f"unknown op kind {op.kind!r}")
            log.record_op(
                OpRecord(
                    user_id=user_id,
                    user_type=type_name,
                    session_id=session_id,
                    op=op.kind,
                    path=op.path or path_by_plan.get(op.plan_id, ""),
                    category_key=op.category_key or "",
                    size=moved,
                    start_us=started,
                    response_us=engine.now - started,
                )
            )
        log.record_session(accounting.finish(engine.now))
        if inter_session_us > 0:
            yield Delay(inter_session_us)


class RealRunner:
    """Replays sessions against a real ``FileSystemAPI`` with wall clocks.

    ``sleep_thinks=False`` (the default) records think times in the stream
    but does not actually sleep, so test runs finish quickly; pass True
    for live load generation against a real file system.
    """

    def __init__(self, fs: FileSystemAPI, generator: SessionGenerator,
                 log: OpSink, sleep_thinks: bool = False):
        self.fs = fs
        self.generator = generator
        self.log = log
        self.sleep_thinks = sleep_thinks

    def run_sessions(self, sessions: int) -> None:
        """Execute ``sessions`` login sessions back to back."""
        for session_id in range(sessions):
            self._run_one(session_id)

    def _now_us(self) -> float:
        return time.perf_counter_ns() / 1000.0

    def _run_one(self, session_id: int) -> None:
        generator = self.generator
        user_id = generator.user_id
        type_name = generator.user_type.name
        accounting = _SessionAccounting(user_id, type_name, session_id,
                                        self._now_us())
        fd_by_plan: dict[int, int] = {}
        path_by_plan: dict[int, str] = {}
        for op in generator.generate_session(session_id):
            if op.kind == "think":
                if self.sleep_thinks and op.size > 0:
                    time.sleep(op.size / 1e6)
                continue
            started = self._now_us()
            moved = op.size
            if op.kind in ("open", "creat"):
                fd = self.fs.open(op.path, op.flags)
                fd_by_plan[op.plan_id] = fd
                path_by_plan[op.plan_id] = op.path
                accounting.saw_file(op.path, op.size, op.category_key)
                moved = 0
            elif op.kind == "read":
                data = self.fs.read(fd_by_plan[op.plan_id], op.size)
                moved = len(data)
                accounting.accessed(moved)
            elif op.kind == "write":
                moved = self.fs.write(fd_by_plan[op.plan_id], _payload(op.size))
                accounting.accessed(moved)
            elif op.kind == "lseek":
                self.fs.lseek(fd_by_plan[op.plan_id], op.size, Whence.SET)
                moved = 0
            elif op.kind == "close":
                self.fs.close(fd_by_plan.pop(op.plan_id))
                moved = 0
            elif op.kind == "unlink":
                self.fs.unlink(op.path)
                moved = 0
            elif op.kind == "stat":
                self.fs.stat(op.path)
                accounting.saw_file(op.path, op.size, op.category_key)
                moved = 0
            elif op.kind == "listdir":
                self.fs.listdir(op.path)
                accounting.accessed(op.size)
            else:  # pragma: no cover
                raise ValueError(f"unknown op kind {op.kind!r}")
            self.log.record_op(
                OpRecord(
                    user_id=user_id,
                    user_type=type_name,
                    session_id=session_id,
                    op=op.kind,
                    path=op.path or path_by_plan.get(op.plan_id, ""),
                    category_key=op.category_key or "",
                    size=moved,
                    start_us=started,
                    response_us=self._now_us() - started,
                )
            )
        self.log.record_session(accounting.finish(self._now_us()))
