"""The User Simulator (USIM) — simulated and real executors.

Section 4.1.3: the USIM "simulates workload on a terminal or workstation,
i.e., a series of users logging in and using the computer".  Since the
pipeline split, the *selection* of operations lives in
:mod:`repro.core.synthesis` (pure, no timing); this module holds the two
executors that replay a synthesized stream against something that takes
time:

* :func:`simulated_user_process` — a DES process replaying the stream
  inside the discrete-event simulation against a simulated file-system
  client, measuring response times off the engine clock.  Wrapped by
  :class:`~repro.core.execution.DesBackend`.
* :class:`RealRunner` — replays against a real (or in-memory)
  ``FileSystemAPI`` and measures wall-clock time, the thesis's
  "difference of before and after calling a system call".

The engine-free analytic executor lives in
:class:`~repro.core.execution.FastReplayBackend`.

``SessionOp``, ``PhaseModel`` and ``SessionGenerator`` are re-exported
here for compatibility with pre-split imports.
"""

from __future__ import annotations

import time

from ..sim import Delay, Engine
from ..vfs import FileSystemAPI, Whence
from .oplog import OpRecord, OpSink, SessionAccounting, apply_op_effects
from .synthesis import PhaseModel, SessionGenerator, SessionOp

__all__ = [
    "SessionOp",
    "PhaseModel",
    "SessionGenerator",
    "simulated_user_process",
    "RealRunner",
]


_WRITE_PAYLOAD = bytes(64 * 1024)


def _payload(nbytes: int) -> bytes:
    """Zero bytes to write; sliced from a shared buffer for speed."""
    if nbytes <= len(_WRITE_PAYLOAD):
        return _WRITE_PAYLOAD[:nbytes]
    return bytes(nbytes)


def simulated_user_process(
    engine: Engine,
    client,
    task,
    log: OpSink,
    deadline_us: float | None = None,
):
    """A DES process: one virtual user running its login sessions.

    ``client`` is any simulated file-system client
    (:class:`~repro.nfs.NfsClient`, local-disk, AFS-like).  Response time
    of every call is the engine-clock delta around it; think operations
    become plain delays.  ``log`` is any :class:`~repro.core.oplog.OpSink`
    — a full :class:`~repro.core.oplog.UsageLog` or an online accumulator.

    ``task`` is the user's :class:`~repro.core.execution.UserSessions`
    work order; its ``offset_us``/``gap_after_us`` encode the arrival
    timing rules (first-login delay, gaps between sessions, no trailing
    gap) shared verbatim with the fast backends.  ``deadline_us``
    applies the shared truncation rule: an op whose start clock is at or
    past the deadline is not issued, and an interrupted session records
    no summary.
    """
    generator: SessionGenerator = task.generator
    sessions: int = task.sessions
    user_id = generator.user_id
    type_name = generator.user_type.name
    offset = task.offset_us
    if offset > 0:
        yield Delay(offset)
    for session_id in range(sessions):
        if deadline_us is not None and engine.now >= deadline_us:
            return
        accounting = SessionAccounting(user_id, type_name, session_id,
                                       engine.now)
        fd_by_plan: dict[int, int] = {}
        path_by_plan: dict[int, str] = {}
        for op in generator.generate_session(session_id):
            if op.kind == "think":
                if op.size > 0:
                    yield Delay(op.size)
                continue
            if deadline_us is not None and engine.now >= deadline_us:
                return
            started = engine.now
            observed = None
            if op.kind in ("open", "creat"):
                # ``op.size`` is the file's size: the FSC-recorded size for
                # opens, the target write-out size for creates.
                fd = yield from client.open(op.path, op.flags)
                fd_by_plan[op.plan_id] = fd
                path_by_plan[op.plan_id] = op.path
            elif op.kind == "read":
                data = yield from client.read(fd_by_plan[op.plan_id], op.size)
                observed = len(data)
            elif op.kind == "write":
                observed = yield from client.write(
                    fd_by_plan[op.plan_id], _payload(op.size)
                )
            elif op.kind == "lseek":
                yield from client.lseek(fd_by_plan[op.plan_id], op.size,
                                        Whence.SET)
            elif op.kind == "close":
                yield from client.close(fd_by_plan.pop(op.plan_id))
            elif op.kind == "unlink":
                yield from client.unlink(op.path)
            elif op.kind == "stat":
                yield from client.stat(op.path)
            elif op.kind == "listdir":
                yield from client.listdir(op.path)
            else:  # pragma: no cover - generator only emits known kinds
                raise ValueError(f"unknown op kind {op.kind!r}")
            moved = apply_op_effects(op, accounting, observed)
            log.record_op(
                OpRecord(
                    user_id=user_id,
                    user_type=type_name,
                    session_id=session_id,
                    op=op.kind,
                    path=op.path or path_by_plan.get(op.plan_id, ""),
                    category_key=op.category_key or "",
                    size=moved,
                    start_us=started,
                    response_us=engine.now - started,
                )
            )
        log.record_session(accounting.finish(engine.now))
        gap = task.gap_after_us(session_id)
        if gap > 0:
            yield Delay(gap)


class RealRunner:
    """Replays sessions against a real ``FileSystemAPI`` with wall clocks.

    ``sleep_thinks=False`` (the default) records think times in the stream
    but does not actually sleep, so test runs finish quickly; pass True
    for live load generation against a real file system.
    """

    def __init__(self, fs: FileSystemAPI, generator: SessionGenerator,
                 log: OpSink, sleep_thinks: bool = False):
        self.fs = fs
        self.generator = generator
        self.log = log
        self.sleep_thinks = sleep_thinks

    def run_sessions(self, sessions: int) -> None:
        """Execute ``sessions`` login sessions back to back."""
        for session_id in range(sessions):
            self._run_one(session_id)

    def _now_us(self) -> float:
        # detlint: ignore[no-wall-clock] — RealRunner measures a real FS; wall time is the product
        return time.perf_counter_ns() / 1000.0

    def _run_one(self, session_id: int) -> None:
        generator = self.generator
        user_id = generator.user_id
        type_name = generator.user_type.name
        accounting = SessionAccounting(user_id, type_name, session_id,
                                       self._now_us())
        fd_by_plan: dict[int, int] = {}
        path_by_plan: dict[int, str] = {}
        for op in generator.generate_session(session_id):
            if op.kind == "think":
                if self.sleep_thinks and op.size > 0:
                    time.sleep(op.size / 1e6)
                continue
            started = self._now_us()
            observed = None
            if op.kind in ("open", "creat"):
                fd = self.fs.open(op.path, op.flags)
                fd_by_plan[op.plan_id] = fd
                path_by_plan[op.plan_id] = op.path
            elif op.kind == "read":
                data = self.fs.read(fd_by_plan[op.plan_id], op.size)
                observed = len(data)
            elif op.kind == "write":
                observed = self.fs.write(fd_by_plan[op.plan_id],
                                         _payload(op.size))
            elif op.kind == "lseek":
                self.fs.lseek(fd_by_plan[op.plan_id], op.size, Whence.SET)
            elif op.kind == "close":
                self.fs.close(fd_by_plan.pop(op.plan_id))
            elif op.kind == "unlink":
                self.fs.unlink(op.path)
            elif op.kind == "stat":
                self.fs.stat(op.path)
            elif op.kind == "listdir":
                self.fs.listdir(op.path)
            else:  # pragma: no cover
                raise ValueError(f"unknown op kind {op.kind!r}")
            moved = apply_op_effects(op, accounting, observed)
            self.log.record_op(
                OpRecord(
                    user_id=user_id,
                    user_type=type_name,
                    session_id=session_id,
                    op=op.kind,
                    path=op.path or path_by_plan.get(op.plan_id, ""),
                    category_key=op.category_key or "",
                    size=moved,
                    start_us=started,
                    response_us=self._now_us() - started,
                )
            )
        self.log.record_session(accounting.finish(self._now_us()))
