"""Pure operation synthesis — the *what* of the workload, with no timing.

Section 4.1.3's USIM repeatedly selects "a file access operation to be
performed, the file on which to perform the operation, the amount of this
file to access, and the time delay to the next operation".  This module
implements exactly that selection as a pure, deterministic function of
``(root seed, user id)`` — stage two of the generation pipeline:

1. **plan** — :meth:`~repro.core.generator.WorkloadGenerator` assigns
   user types and builds the FSC layout manifest;
2. **synthesize** (this module) — :class:`SessionGenerator` turns a user
   type's usage distributions into a stream of :class:`SessionOp`
   system-call operations for each login session;
3. **execute** — an :class:`~repro.core.execution.ExecutionBackend`
   replays the stream and attaches timing (discrete-event simulation,
   analytic fast replay, or a real file system).

Nothing here imports the simulator: the op stream exists independently of
how (or whether) it is timed, which is what lets the fast backend skip
the DES entirely while producing a byte-identical stream.

Sampling is *batched*: every per-quantity random stream is wrapped in a
:class:`~repro.distributions.batch.BatchSampler` that pre-draws blocks of
variates with one vectorized call instead of paying NumPy's scalar-call
overhead per operation.

Extensions beyond the thesis's minimum (its section 6.2 future work):

* ``access_pattern="random"`` switches the per-file access from purely
  sequential to uniform random offsets (the database-style behaviour the
  thesis flags as unsupported);
* :class:`PhaseModel` gives a user time-varying behaviour via a two-state
  Markov chain (I/O-bound vs CPU-bound think-time multipliers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from ..distributions import BatchSampler, RandomStreams, Uniform
from ..vfs import OpenFlags
from .fsc import FileSystemLayout
from .spec import UsageSpec, UserTypeSpec, UseType

__all__ = [
    "SessionOp",
    "PhaseModel",
    "SessionGenerator",
]

_UNIT = Uniform(0.0, 1.0)


@dataclass(frozen=True)
class SessionOp:
    """One element of a session's operation stream.

    ``size`` is overloaded per kind: file size for open/creat, byte count
    for read/write/listdir, absolute offset for lseek, microseconds for
    think.
    """

    kind: str                       # open|creat|read|write|lseek|close|
    #                                 unlink|stat|listdir|think
    plan_id: int | None = None      # links data ops to their open file
    path: str | None = None
    category_key: str | None = None
    size: int = 0
    flags: OpenFlags = OpenFlags.RDONLY


class PhaseModel:
    """Two-state Markov modulation of think time (section 6.2 extension).

    State ``io`` uses the base think-time distribution; state ``cpu``
    multiplies it by ``cpu_multiplier`` (the user is computing, not doing
    I/O).  Transition probabilities are per-operation.
    """

    def __init__(self, cpu_multiplier: float = 8.0,
                 p_enter_cpu: float = 0.05, p_exit_cpu: float = 0.3):
        if cpu_multiplier < 0:
            raise ValueError("cpu_multiplier must be >= 0")
        for name, p in (("p_enter_cpu", p_enter_cpu), ("p_exit_cpu", p_exit_cpu)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability")
        self.cpu_multiplier = cpu_multiplier
        self.p_enter_cpu = p_enter_cpu
        self.p_exit_cpu = p_exit_cpu
        self.state = "io"

    def step(self, u: float) -> float:
        """Advance the chain one step on uniform draw ``u``; return the
        current think-time multiplier."""
        if self.state == "io":
            if u < self.p_enter_cpu:
                self.state = "cpu"
        else:
            if u < self.p_exit_cpu:
                self.state = "io"
        return self.cpu_multiplier if self.state == "cpu" else 1.0

    def multiplier(self, rng) -> float:
        """Advance the chain one step drawing from ``rng`` directly."""
        return self.step(float(rng.random()))


class _FilePlan:
    """A per-file script: open → data ops → close (+unlink for TEMP)."""

    def __init__(self, plan_id: int, ops: list[SessionOp]):
        self.plan_id = plan_id
        self._ops = ops
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._ops)

    def pop(self) -> SessionOp:
        op = self._ops[self._next]
        self._next += 1
        return op


@dataclass(frozen=True)
class _UsageSamplers:
    """The batched per-usage-entry samplers (one set per file category)."""

    usage: UsageSpec
    file_count: BatchSampler
    access_per_byte: BatchSampler
    file_size: BatchSampler


class SessionGenerator:
    """Generates login-session operation streams for one virtual user.

    Determinism contract (load-bearing for :mod:`repro.fleet` and for
    cross-backend stream identity): all of a user's randomness comes from
    ``streams.fork(f"user-{user_id}")``, a family derived from the *root*
    seed and the user id alone, with one named sub-stream per sampled
    quantity (selection, per-category counts/budgets/sizes, chunk sizes,
    write mix, seek offsets, think times, phase transitions).  A user's
    operation stream is therefore identical no matter which other users
    run alongside it, which worker process it runs in, or which execution
    backend replays it — this is what makes sharded fleet runs aggregate
    bit-for-bit to the single-process result and what lets the fast
    backend reproduce the DES op stream exactly.

    The per-quantity streams also make block pre-drawing safe: a
    :class:`~repro.distributions.BatchSampler` refills from its own
    stream in bursts, which would reorder draws on a shared stream but is
    invisible on a dedicated one.
    """

    def __init__(
        self,
        user_type: UserTypeSpec,
        layout: FileSystemLayout,
        streams: RandomStreams,
        user_id: int,
        access_pattern: str = "sequential",
        phase_model: PhaseModel | None = None,
    ):
        if access_pattern not in ("sequential", "random"):
            raise ValueError(
                f"access_pattern must be sequential|random, got "
                f"{access_pattern!r}"
            )
        self.user_type = user_type
        self.layout = layout
        self.user_id = user_id
        self.access_pattern = access_pattern
        self.phase_model = phase_model
        base = streams.fork(f"user-{user_id}")
        self._rng_select = base.get("select")
        self._chunk = BatchSampler(user_type.access_size, base.get("chunk"),
                                   block=512)
        self._think = BatchSampler(user_type.think_time, base.get("think"),
                                   block=512)
        self._write_mix = BatchSampler(_UNIT, base.get("write-mix"), block=512)
        self._seek = BatchSampler(_UNIT, base.get("seek"), block=256)
        self._phase = BatchSampler(_UNIT, base.get("phase"), block=256)
        self._usage_samplers = tuple(
            _UsageSamplers(
                usage=usage,
                file_count=BatchSampler(
                    usage.file_count,
                    base.get(f"count:{usage.category.key}"), block=32,
                ),
                access_per_byte=BatchSampler(
                    usage.access_per_byte,
                    base.get(f"apb:{usage.category.key}"), block=128,
                ),
                file_size=BatchSampler(
                    usage.file_size,
                    base.get(f"size:{usage.category.key}"), block=32,
                ),
            )
            for usage in user_type.usage
        )
        self._plan_counter = 0

    # -- sampling helpers --------------------------------------------------------

    # Fitted distributions can emit pathological variates (NaN from a
    # degenerate fit, negative values from a shifted family).  Each helper
    # clamps to its quantity's valid range instead of letting the value
    # reach an executor — where it would surface much later as an
    # ``int(nan)`` ValueError or a negative Delay SimulationError.

    def _sample_count(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_count.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_ratio(self, samplers: _UsageSamplers) -> float:
        """A non-negative, finite accesses-per-byte draw."""
        ratio = samplers.access_per_byte.draw()
        if not math.isfinite(ratio) or ratio < 0.0:
            return 0.0
        return ratio

    def _sample_access_budget(self, samplers: _UsageSamplers,
                              file_size: int) -> int:
        return int(round(self._sample_ratio(samplers) * file_size))

    def _sample_file_size(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_size.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_chunk(self, remaining: int) -> int:
        raw = self._chunk.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, min(int(round(raw)), remaining))

    def _sample_think_us(self) -> int:
        raw = self._think.draw()
        if self.phase_model is not None:
            raw *= self.phase_model.step(self._phase.draw())
        if not math.isfinite(raw) or raw < 0.0:
            return 0
        return int(round(raw))

    def _seek_offset(self, file_size: int) -> int:
        """A uniform random offset in ``[0, file_size)`` (random mode)."""
        return min(int(self._seek.draw() * file_size), file_size - 1)

    # -- per-category plan construction ------------------------------------------

    def _data_ops(self, plan_id: int, budget: int, file_size: int,
                  write_fraction: float,
                  category_key: str | None = None) -> list[SessionOp]:
        """Chunked read/write ops consuming ``budget`` bytes of a file.

        Sequential mode walks the file, wrapping to offset 0 at EOF (the
        thesis models sequential access only); random mode seeks to a
        uniform offset before every chunk.
        """
        ops: list[SessionOp] = []
        if budget <= 0 or file_size <= 0:
            return ops
        position = 0
        remaining = budget
        while remaining > 0:
            if self.access_pattern == "random":
                position = self._seek_offset(file_size)
                ops.append(SessionOp("lseek", plan_id=plan_id, size=position,
                                     category_key=category_key))
            elif position >= file_size:
                position = 0
                ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                     category_key=category_key))
            chunk = self._sample_chunk(min(remaining, file_size - position
                                           if self.access_pattern == "sequential"
                                           else remaining))
            chunk = min(chunk, file_size - position)
            if chunk <= 0:
                position = 0
                continue
            is_write = self._write_mix.draw() < write_fraction
            ops.append(
                SessionOp(
                    "write" if is_write else "read",
                    plan_id=plan_id,
                    size=chunk,
                    category_key=category_key,
                )
            )
            position += chunk
            remaining -= chunk
        return ops

    def _write_out_ops(self, plan_id: int, target_size: int,
                       category_key: str | None = None) -> list[SessionOp]:
        """Sequential writes creating ``target_size`` bytes of fresh file."""
        ops: list[SessionOp] = []
        written = 0
        while written < target_size:
            chunk = self._sample_chunk(target_size - written)
            ops.append(SessionOp("write", plan_id=plan_id, size=chunk,
                                 category_key=category_key))
            written += chunk
        return ops

    def _plan_for_existing(self, samplers: _UsageSamplers, path: str,
                           file_size: int) -> _FilePlan:
        """RDONLY / RD-WRT plan over a file the FSC created."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        budget = self._sample_access_budget(samplers, file_size)
        write_fraction = 0.5 if category.use is UseType.RD_WRT else 0.0
        mode = OpenFlags.RDWR if category.writes else OpenFlags.RDONLY
        ops = [
            SessionOp("open", plan_id=plan_id, path=path,
                      category_key=category.key, size=file_size, flags=mode)
        ]
        ops.extend(self._data_ops(plan_id, budget, file_size, write_fraction,
                                  category_key=category.key))
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_new(self, samplers: _UsageSamplers, path: str,
                      temporary: bool) -> _FilePlan:
        """NEW / TEMP plan: create, write out, (re-read and unlink)."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        target_size = self._sample_file_size(samplers)
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        ops = [
            SessionOp("creat", plan_id=plan_id, path=path,
                      category_key=category.key, size=target_size,
                      flags=flags)
        ]
        ops.extend(self._write_out_ops(plan_id, target_size,
                                       category_key=category.key))
        # Spend the rest of the category's access budget re-reading the
        # fresh file: Table 5.2 gives NEW files 2.36 accesses per byte and
        # TEMP files 2.00, i.e. well beyond the single write-out pass.
        budget = self._sample_access_budget(samplers, target_size)
        read_budget = max(0, budget - target_size)
        if read_budget > 0:
            ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                 category_key=category.key))
            ops.extend(
                self._data_ops(plan_id, read_budget, target_size, 0.0,
                               category_key=category.key)
            )
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        if temporary:
            ops.append(SessionOp("unlink", path=path,
                                 category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_directory(self, samplers: _UsageSamplers, path: str,
                            dir_size: int) -> _FilePlan:
        """DIR plan: stat once, then one readdir per whole-directory pass."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        passes = max(1, int(round(self._sample_ratio(samplers))))
        ops = [SessionOp("stat", path=path, category_key=category.key,
                         plan_id=plan_id, size=dir_size)]
        for _ in range(passes):
            ops.append(SessionOp("listdir", path=path,
                                 category_key=category.key, size=dir_size))
        return _FilePlan(plan_id, ops)

    def _next_plan_id(self) -> int:
        self._plan_counter += 1
        return self._plan_counter

    # -- session assembly ------------------------------------------------------------

    def _build_plans(self, session_id: int) -> list[_FilePlan]:
        plans: list[_FilePlan] = []
        for samplers in self._usage_samplers:
            usage = samplers.usage
            if self._rng_select.random() >= usage.fraction_of_users:
                continue
            category = usage.category
            count = self._sample_count(samplers)
            if category.creates_files:
                temporary = category.use is UseType.TEMP
                home = self.layout.user_home(self.user_id)
                prefix = "tmp" if temporary else "new"
                for k in range(count):
                    path = (
                        f"{home}/{prefix}-s{session_id:04d}-"
                        f"p{self._plan_counter:05d}-{k}"
                    )
                    plans.append(self._plan_for_new(samplers, path, temporary))
                continue
            pool = self.layout.files_for(category, self.user_id)
            if not pool:
                continue
            chosen_idx = self._rng_select.choice(
                len(pool), size=min(count, len(pool)), replace=False
            )
            for idx in chosen_idx.reshape(-1):
                record = pool[int(idx)]
                if category.is_directory:
                    plans.append(
                        self._plan_for_directory(samplers, record.path,
                                                 record.size)
                    )
                else:
                    plans.append(
                        self._plan_for_existing(samplers, record.path,
                                                record.size)
                    )
        return plans

    def generate_session(self, session_id: int) -> Iterator[SessionOp]:
        """Yield the operation stream of one login session.

        File plans are interleaved by independent random selection among
        the currently open files (the thesis's independence assumption),
        with at most ``user_type.max_open_files`` concurrently open.
        A think-time operation follows every file operation.
        """
        pending = self._build_plans(session_id)
        active: list[_FilePlan] = []
        max_open = self.user_type.max_open_files
        while pending or active:
            while pending and len(active) < max_open:
                active.append(pending.pop(0))
            if not active:
                break
            slot = int(self._rng_select.integers(0, len(active)))
            plan = active[slot]
            op = plan.pop()
            yield op
            if plan.exhausted:
                active.pop(slot)
            think = self._sample_think_us()
            yield SessionOp("think", size=think)
