"""Pure operation synthesis — the *what* of the workload, with no timing.

Section 4.1.3's USIM repeatedly selects "a file access operation to be
performed, the file on which to perform the operation, the amount of this
file to access, and the time delay to the next operation".  This module
implements exactly that selection as a pure, deterministic function of
``(root seed, user id)`` — stage two of the generation pipeline:

1. **plan** — :meth:`~repro.core.generator.WorkloadGenerator` assigns
   user types and builds the FSC layout manifest;
2. **synthesize** (this module) — :class:`SessionGenerator` turns a user
   type's usage distributions into a stream of :class:`SessionOp`
   system-call operations for each login session;
3. **execute** — an :class:`~repro.core.execution.ExecutionBackend`
   replays the stream and attaches timing (discrete-event simulation,
   analytic fast replay, or a real file system).

Nothing here imports the simulator: the op stream exists independently of
how (or whether) it is timed, which is what lets the fast backend skip
the DES entirely while producing a byte-identical stream.

Sampling is *batched*: every per-quantity random stream is wrapped in a
:class:`~repro.distributions.batch.BatchSampler` that pre-draws blocks of
variates with one vectorized call instead of paying NumPy's scalar-call
overhead per operation.

Sessions come out in either of two byte-identical representations:
:meth:`SessionGenerator.generate_session` yields scalar
:class:`SessionOp` objects, and
:meth:`SessionGenerator.generate_session_batch` builds the same stream
as one columnar :class:`~repro.core.opbatch.OpBatch` — the per-chunk
loops replaced by ``searchsorted`` cuts over pre-drawn blocks — for the
array-native fast backend.

Extensions beyond the thesis's minimum (its section 6.2 future work):

* ``access_pattern="random"`` switches the per-file access from purely
  sequential to uniform random offsets (the database-style behaviour the
  thesis flags as unsupported);
* :class:`PhaseModel` gives a user time-varying behaviour via a two-state
  Markov chain (I/O-bound vs CPU-bound think-time multipliers).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..distributions import BatchSampler, RandomStreams, Uniform
from ..vfs import OpenFlags
from .fsc import FileSystemLayout
from .opbatch import (
    KIND_CLOSE,
    KIND_CREAT,
    KIND_LISTDIR,
    KIND_LSEEK,
    KIND_OPEN,
    KIND_READ,
    KIND_STAT,
    KIND_THINK,
    KIND_UNLINK,
    KIND_WRITE,
    OpBatch,
    StringTable,
)
from .spec import UsageSpec, UserTypeSpec, UseType

__all__ = [
    "SessionOp",
    "PhaseModel",
    "SessionGenerator",
]

# int64 cannot hold every Python int a pathological (but finite) draw
# could produce; the columnar path saturates instead of wrapping.  Real
# specs live many orders of magnitude below this.
_INT64_SATURATE = float(2**63 - 1024)

_EMPTY_I8 = np.empty(0, dtype=np.int8)
_EMPTY_I64 = np.empty(0, dtype=np.int64)

# Max chunk variates sanitised per cumsum pass (see _chunk_run).
_CHUNK_SLAB = 64

# Reusable single-row column segments (np.concatenate copies, so sharing
# these across plans is safe) and the creat-mode flag value.
_OPEN_ROW = np.array([KIND_OPEN], dtype=np.int8)
_CREAT_ROW = np.array([KIND_CREAT], dtype=np.int8)
_LSEEK_ROW = np.array([KIND_LSEEK], dtype=np.int8)
_CLOSE_ROW = np.array([KIND_CLOSE], dtype=np.int8)
_UNLINK_ROW = np.array([KIND_UNLINK], dtype=np.int8)
_ZERO_I64 = np.zeros(1, dtype=np.int64)
_CREAT_FLAGS = int(OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)

# Constant kind runs: chunk segments append read-only *views* of these
# instead of allocating a filled array per segment (np.concatenate
# copies, so sharing is safe).  Sized to cover any single segment: a
# segment never exceeds the chunk sampler's block (or slab) size.
_RUN_MAX = 8192
_READ_RUN = np.full(_RUN_MAX, KIND_READ, dtype=np.int8)
_WRITE_RUN = np.full(_RUN_MAX, KIND_WRITE, dtype=np.int8)
_LSEEK_READ_PAIRS = np.tile(
    np.array([KIND_LSEEK, KIND_READ], dtype=np.int8), _RUN_MAX)

_UNIT = Uniform(0.0, 1.0)


@dataclass(frozen=True)
class SessionOp:
    """One element of a session's operation stream.

    ``size`` is overloaded per kind: file size for open/creat, byte count
    for read/write/listdir, absolute offset for lseek, microseconds for
    think.
    """

    kind: str                       # open|creat|read|write|lseek|close|
    #                                 unlink|stat|listdir|think
    plan_id: int | None = None      # links data ops to their open file
    path: str | None = None
    category_key: str | None = None
    size: int = 0
    flags: OpenFlags = OpenFlags.RDONLY


class PhaseModel:
    """Two-state Markov modulation of think time (section 6.2 extension).

    State ``io`` uses the base think-time distribution; state ``cpu``
    multiplies it by ``cpu_multiplier`` (the user is computing, not doing
    I/O).  Transition probabilities are per-operation.
    """

    def __init__(self, cpu_multiplier: float = 8.0,
                 p_enter_cpu: float = 0.05, p_exit_cpu: float = 0.3):
        if cpu_multiplier < 0:
            raise ValueError("cpu_multiplier must be >= 0")
        for name, p in (("p_enter_cpu", p_enter_cpu), ("p_exit_cpu", p_exit_cpu)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability")
        self.cpu_multiplier = cpu_multiplier
        self.p_enter_cpu = p_enter_cpu
        self.p_exit_cpu = p_exit_cpu
        self.state = "io"

    def step(self, u: float) -> float:
        """Advance the chain one step on uniform draw ``u``; return the
        current think-time multiplier."""
        if self.state == "io":
            if u < self.p_enter_cpu:
                self.state = "cpu"
        else:
            if u < self.p_exit_cpu:
                self.state = "io"
        return self.cpu_multiplier if self.state == "cpu" else 1.0

    def multiplier(self, rng) -> float:
        """Advance the chain one step drawing from ``rng`` directly."""
        return self.step(float(rng.random()))

    def step_many(self, us: np.ndarray) -> np.ndarray:
        """Advance the chain once per element of ``us``; return the
        multiplier sequence.  Equivalent to ``[self.step(u) for u in us]``
        (the chain is a sequential recurrence, so this stays a loop — but
        one over a pre-drawn array, matching the columnar think path)."""
        out = np.empty(len(us), dtype=np.float64)
        cpu = self.state == "cpu"
        p_enter, p_exit = self.p_enter_cpu, self.p_exit_cpu
        multiplier = self.cpu_multiplier
        for i, u in enumerate(us.tolist()):
            if cpu:
                if u < p_exit:
                    cpu = False
            elif u < p_enter:
                cpu = True
            out[i] = multiplier if cpu else 1.0
        self.state = "cpu" if cpu else "io"
        return out


class _FilePlan:
    """A per-file script: open → data ops → close (+unlink for TEMP)."""

    def __init__(self, plan_id: int, ops: list[SessionOp]):
        self.plan_id = plan_id
        self._ops = ops
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._ops)

    def pop(self) -> SessionOp:
        op = self._ops[self._next]
        self._next += 1
        return op


@dataclass(frozen=True)
class _UsageSamplers:
    """The batched per-usage-entry samplers (one set per file category)."""

    usage: UsageSpec
    file_count: BatchSampler
    access_per_byte: BatchSampler
    file_size: BatchSampler


class _ChunkBlock(BatchSampler):
    """Chunk-size sampler whose blocks carry a sanitised prefix-sum cache.

    Every refilled block is sanitised once (finite, rounded, >= 1 — the
    vectorized :meth:`SessionGenerator._sample_chunk` clamp) and
    prefix-summed, so cutting a segment of chunks to a byte boundary is
    a single ``searchsorted`` over the cached sums instead of a fresh
    sanitise + cumsum per segment.  ``draw()`` still serves the *raw*
    variates, keeping the scalar path untouched.
    """

    __slots__ = ("san", "cum0")

    def __init__(self, dist, rng, block: int = 512):
        super().__init__(dist, rng, block=block)
        self.san: np.ndarray | None = None
        self.cum0: np.ndarray | None = None

    def _refill(self) -> np.ndarray:
        buffer = super()._refill()
        san = np.maximum(
            np.where(np.isfinite(buffer), np.rint(buffer), 1.0), 1.0
        )
        # int64 saturation: keeps the astype in run() defined even for
        # absurd finite draws (the byte boundary always cuts first).
        np.minimum(san, _INT64_SATURATE, out=san)
        self.san = san
        cum0 = np.empty(len(san) + 1, dtype=np.float64)
        cum0[0] = 0.0
        np.cumsum(san, out=cum0[1:])
        self.cum0 = cum0
        return buffer

    def san_view(self) -> np.ndarray:
        """Sanitised not-yet-consumed variates (refills when spent)."""
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            self._refill()
        return self.san[self._next:]

    def run(self, boundary: int) -> tuple[np.ndarray, int, bool]:
        """Consume chunks up to ``boundary`` bytes from the cached block.

        Returns ``(chunks, advanced, crossed)``; the crossing chunk is
        cut to land exactly on the boundary, as the scalar per-draw
        clamp does.  May return fewer bytes than ``boundary`` when the
        block runs out — the caller loops, and the next call refills.
        """
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            self._refill()
        start = self._next
        cum0 = self.cum0
        base = cum0[start]
        # Element j's running total is cum0[j+1]; the crossing element is
        # the first whose total reaches base + boundary.
        cut = int(cum0.searchsorted(base + boundary, side="left")) - 1
        limit = len(self.san)
        if cut >= limit:
            chunks = self.san[start:].astype(np.int64)
            advanced = int(cum0[limit] - base)
            self._next = limit
            return chunks, advanced, False
        chunks = self.san[start:cut + 1].astype(np.int64)
        chunks[-1] = boundary - int(cum0[cut] - base)
        self._next = cut + 1
        return chunks, boundary, True


class _SessionColumns:
    """Accumulates one session's plan columns without per-plan arrays.

    Plan builders append kind/size *segments* (shared single-row
    constants or vectorized chunk arrays) plus sparse fix-ups; the
    constant-within-a-plan columns (plan id, category) are materialised
    at the end with one ``np.repeat`` over the plan lengths, and path /
    flag columns with one fancy assignment each — so building a session
    costs O(plans) small Python appends plus O(ops) vectorized work,
    instead of six array allocations per plan.
    """

    __slots__ = (
        "paths", "categories", "kind_segs", "size_segs", "lengths",
        "plan_base", "cat_base", "plan_fix_pos", "plan_fix_val",
        "path_pos", "path_val", "flag_pos", "flag_val",
        "mix_start", "mix_count", "mix_step", "mix_wf", "total",
    )

    def __init__(self, paths: StringTable, categories: StringTable):
        self.paths = paths
        self.categories = categories
        self.kind_segs: list[np.ndarray] = []
        self.size_segs: list = []
        self.lengths: list[int] = []
        self.plan_base: list[int] = []   # np.repeat fill per plan
        self.cat_base: list[int] = []
        self.plan_fix_pos: list[int] = []  # sparse overrides (unlink/stat)
        self.plan_fix_val: list[int] = []
        self.path_pos: list[int] = []
        self.path_val: list[int] = []
        self.flag_pos: list[int] = []
        self.flag_val: list[int] = []
        # Write-mix draw ranges: each chunk segment that consumes
        # write-mix uniforms records (first row, count, row stride,
        # write fraction); the draws happen once per session, in range
        # order — the same order the scalar loop consumes them.
        self.mix_start: list[int] = []
        self.mix_count: list[int] = []
        self.mix_step: list[int] = []
        self.mix_wf: list[float] = []
        self.total = 0

    def add_plan(self, n: int, plan_value: int, cat_idx: int) -> None:
        """Close one plan of ``n`` rows (segments already appended)."""
        self.lengths.append(n)
        self.plan_base.append(plan_value)
        self.cat_base.append(cat_idx)
        self.total += n


class SessionGenerator:
    """Generates login-session operation streams for one virtual user.

    Determinism contract (load-bearing for :mod:`repro.fleet` and for
    cross-backend stream identity): all of a user's randomness comes from
    ``streams.fork(f"user-{user_id}")``, a family derived from the *root*
    seed and the user id alone, with one named sub-stream per sampled
    quantity (selection, plan-interleave slots, per-category
    counts/budgets/sizes, chunk sizes, write mix, seek offsets, think
    times, phase transitions).  A user's
    operation stream is therefore identical no matter which other users
    run alongside it, which worker process it runs in, or which execution
    backend replays it — this is what makes sharded fleet runs aggregate
    bit-for-bit to the single-process result and what lets the fast
    backend reproduce the DES op stream exactly.  The temporal load
    layer (:mod:`repro.core.arrivals`) draws from the *same* family
    under its own names (``first-login``, ``session-gap``), so enabling
    arrivals moves the timeline without touching any synthesis stream.

    The per-quantity streams also make block pre-drawing safe: a
    :class:`~repro.distributions.BatchSampler` refills from its own
    stream in bursts, which would reorder draws on a shared stream but is
    invisible on a dedicated one.
    """

    def __init__(
        self,
        user_type: UserTypeSpec,
        layout: FileSystemLayout,
        streams: RandomStreams,
        user_id: int,
        access_pattern: str = "sequential",
        phase_model: PhaseModel | None = None,
    ):
        if access_pattern not in ("sequential", "random"):
            raise ValueError(
                f"access_pattern must be sequential|random, got "
                f"{access_pattern!r}"
            )
        self.user_type = user_type
        self.layout = layout
        self.user_id = user_id
        self.access_pattern = access_pattern
        self.phase_model = phase_model
        base = streams.fork(f"user-{user_id}")
        self._rng_select = base.get("select")
        # Plan interleaving draws from its own uniform stream ("slot",
        # distinct from "select") so the columnar path can pre-draw a
        # whole session's slot uniforms in one block: a uniform is
        # bound-independent (slot = floor(u * width)), unlike bounded
        # integer draws whose bit consumption depends on the bound.
        self._slot = BatchSampler(_UNIT, base.get("slot"), block=512)
        self._chunk = _ChunkBlock(user_type.access_size, base.get("chunk"),
                                  block=512)
        self._think = BatchSampler(user_type.think_time, base.get("think"),
                                   block=512)
        self._write_mix = BatchSampler(_UNIT, base.get("write-mix"), block=512)
        # The seek and phase streams are only ever *drawn* in random
        # mode / with a phase model; skipping their generator setup
        # otherwise cannot change any stream (they are never consumed).
        self._seek = (BatchSampler(_UNIT, base.get("seek"), block=256)
                      if access_pattern == "random" else None)
        self._phase = (BatchSampler(_UNIT, base.get("phase"), block=256)
                       if phase_model is not None else None)
        self._usage_samplers = tuple(
            _UsageSamplers(
                usage=usage,
                file_count=BatchSampler(
                    usage.file_count,
                    base.get(f"count:{usage.category.key}"), block=32,
                ),
                access_per_byte=BatchSampler(
                    usage.access_per_byte,
                    base.get(f"apb:{usage.category.key}"), block=128,
                ),
                file_size=BatchSampler(
                    usage.file_size,
                    base.get(f"size:{usage.category.key}"), block=32,
                ),
            )
            for usage in user_type.usage
        )
        self._plan_counter = 0

    # -- sampling helpers --------------------------------------------------------

    # Fitted distributions can emit pathological variates (NaN from a
    # degenerate fit, negative values from a shifted family).  Each helper
    # clamps to its quantity's valid range instead of letting the value
    # reach an executor — where it would surface much later as an
    # ``int(nan)`` ValueError or a negative Delay SimulationError.

    def _sample_count(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_count.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_ratio(self, samplers: _UsageSamplers) -> float:
        """A non-negative, finite accesses-per-byte draw."""
        ratio = samplers.access_per_byte.draw()
        if not math.isfinite(ratio) or ratio < 0.0:
            return 0.0
        return ratio

    def _sample_access_budget(self, samplers: _UsageSamplers,
                              file_size: int) -> int:
        return int(round(self._sample_ratio(samplers) * file_size))

    def _sample_file_size(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_size.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_chunk(self, remaining: int) -> int:
        raw = self._chunk.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, min(int(round(raw)), remaining))

    def _sample_think_us(self) -> int:
        raw = self._think.draw()
        if self.phase_model is not None:
            raw *= self.phase_model.step(self._phase.draw())
        if not math.isfinite(raw) or raw < 0.0:
            return 0
        return int(round(raw))

    def _seek_offset(self, file_size: int) -> int:
        """A uniform random offset in ``[0, file_size)`` (random mode)."""
        return min(int(self._seek.draw() * file_size), file_size - 1)

    # -- per-category plan construction ------------------------------------------

    def _data_ops(self, plan_id: int, budget: int, file_size: int,
                  write_fraction: float,
                  category_key: str | None = None) -> list[SessionOp]:
        """Chunked read/write ops consuming ``budget`` bytes of a file.

        Sequential mode walks the file, wrapping to offset 0 at EOF (the
        thesis models sequential access only); random mode seeks to a
        uniform offset before every chunk.
        """
        ops: list[SessionOp] = []
        if budget <= 0 or file_size <= 0:
            return ops
        position = 0
        remaining = budget
        while remaining > 0:
            if self.access_pattern == "random":
                position = self._seek_offset(file_size)
                ops.append(SessionOp("lseek", plan_id=plan_id, size=position,
                                     category_key=category_key))
            elif position >= file_size:
                position = 0
                ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                     category_key=category_key))
            chunk = self._sample_chunk(min(remaining, file_size - position
                                           if self.access_pattern == "sequential"
                                           else remaining))
            chunk = min(chunk, file_size - position)
            if chunk <= 0:
                position = 0
                continue
            is_write = self._write_mix.draw() < write_fraction
            ops.append(
                SessionOp(
                    "write" if is_write else "read",
                    plan_id=plan_id,
                    size=chunk,
                    category_key=category_key,
                )
            )
            position += chunk
            remaining -= chunk
        return ops

    def _write_out_ops(self, plan_id: int, target_size: int,
                       category_key: str | None = None) -> list[SessionOp]:
        """Sequential writes creating ``target_size`` bytes of fresh file."""
        ops: list[SessionOp] = []
        written = 0
        while written < target_size:
            chunk = self._sample_chunk(target_size - written)
            ops.append(SessionOp("write", plan_id=plan_id, size=chunk,
                                 category_key=category_key))
            written += chunk
        return ops

    def _plan_for_existing(self, samplers: _UsageSamplers, path: str,
                           file_size: int) -> _FilePlan:
        """RDONLY / RD-WRT plan over a file the FSC created."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        budget = self._sample_access_budget(samplers, file_size)
        write_fraction = 0.5 if category.use is UseType.RD_WRT else 0.0
        mode = OpenFlags.RDWR if category.writes else OpenFlags.RDONLY
        ops = [
            SessionOp("open", plan_id=plan_id, path=path,
                      category_key=category.key, size=file_size, flags=mode)
        ]
        ops.extend(self._data_ops(plan_id, budget, file_size, write_fraction,
                                  category_key=category.key))
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_new(self, samplers: _UsageSamplers, path: str,
                      temporary: bool) -> _FilePlan:
        """NEW / TEMP plan: create, write out, (re-read and unlink)."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        target_size = self._sample_file_size(samplers)
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        ops = [
            SessionOp("creat", plan_id=plan_id, path=path,
                      category_key=category.key, size=target_size,
                      flags=flags)
        ]
        ops.extend(self._write_out_ops(plan_id, target_size,
                                       category_key=category.key))
        # Spend the rest of the category's access budget re-reading the
        # fresh file: Table 5.2 gives NEW files 2.36 accesses per byte and
        # TEMP files 2.00, i.e. well beyond the single write-out pass.
        budget = self._sample_access_budget(samplers, target_size)
        read_budget = max(0, budget - target_size)
        if read_budget > 0:
            ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                 category_key=category.key))
            ops.extend(
                self._data_ops(plan_id, read_budget, target_size, 0.0,
                               category_key=category.key)
            )
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        if temporary:
            ops.append(SessionOp("unlink", path=path,
                                 category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_directory(self, samplers: _UsageSamplers, path: str,
                            dir_size: int) -> _FilePlan:
        """DIR plan: stat once, then one readdir per whole-directory pass."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        passes = max(1, int(round(self._sample_ratio(samplers))))
        ops = [SessionOp("stat", path=path, category_key=category.key,
                         plan_id=plan_id, size=dir_size)]
        for _ in range(passes):
            ops.append(SessionOp("listdir", path=path,
                                 category_key=category.key, size=dir_size))
        return _FilePlan(plan_id, ops)

    def _next_plan_id(self) -> int:
        self._plan_counter += 1
        return self._plan_counter

    # -- session assembly ------------------------------------------------------------

    def _session_plan_specs(self, session_id: int):
        """Yield one ``(shape, samplers, path, extra)`` spec per file plan.

        This is the session's *selection* walk — which categories fire,
        how many files, which pool members — shared verbatim by the
        scalar (:meth:`_build_plans`) and columnar
        (:meth:`generate_session_batch`) paths so both consume the
        ``select`` stream identically.  ``extra`` is the ``temporary``
        flag for ``"new"`` plans and the file/directory size otherwise.
        Specs are yielded lazily: new-file paths embed the live plan
        counter, which the consumer advances between specs exactly as
        the pre-refactor loop did.
        """
        for samplers in self._usage_samplers:
            usage = samplers.usage
            if self._rng_select.random() >= usage.fraction_of_users:
                continue
            category = usage.category
            count = self._sample_count(samplers)
            if category.creates_files:
                temporary = category.use is UseType.TEMP
                home = self.layout.user_home(self.user_id)
                prefix = "tmp" if temporary else "new"
                for k in range(count):
                    path = (
                        f"{home}/{prefix}-s{session_id:04d}-"
                        f"p{self._plan_counter:05d}-{k}"
                    )
                    yield "new", samplers, path, temporary
                continue
            pool = self.layout.files_for(category, self.user_id)
            if not pool:
                continue
            chosen_idx = self._rng_select.choice(
                len(pool), size=min(count, len(pool)), replace=False
            )
            for idx in chosen_idx.reshape(-1):
                record = pool[int(idx)]
                shape = "dir" if category.is_directory else "existing"
                yield shape, samplers, record.path, record.size

    def _build_plans(self, session_id: int) -> list[_FilePlan]:
        plans: list[_FilePlan] = []
        for shape, samplers, path, extra in self._session_plan_specs(
            session_id
        ):
            if shape == "new":
                plans.append(self._plan_for_new(samplers, path, extra))
            elif shape == "dir":
                plans.append(self._plan_for_directory(samplers, path, extra))
            else:
                plans.append(self._plan_for_existing(samplers, path, extra))
        return plans

    def generate_session(self, session_id: int) -> Iterator[SessionOp]:
        """Yield the operation stream of one login session.

        File plans are interleaved by independent random selection among
        the currently open files (the thesis's independence assumption),
        with at most ``user_type.max_open_files`` concurrently open.
        A think-time operation follows every file operation.
        """
        # deque: popping the head of a list is O(n) per pop, O(n²) per
        # session; popleft keeps the identical FIFO order in O(1).
        pending = deque(self._build_plans(session_id))
        active: list[_FilePlan] = []
        max_open = self.user_type.max_open_files
        while pending or active:
            while pending and len(active) < max_open:
                active.append(pending.popleft())
            if not active:
                break
            # One uniform per op; floor(u * width) can land on width
            # itself only through float rounding of u ≈ 1, hence the
            # clamp (same rule as _seek_offset).
            slot = int(self._slot.draw() * len(active))
            if slot == len(active):
                slot -= 1
            plan = active[slot]
            op = plan.pop()
            yield op
            if plan.exhausted:
                active.pop(slot)
            think = self._sample_think_us()
            yield SessionOp("think", size=think)

    # -- columnar synthesis ------------------------------------------------------
    #
    # The batch path draws the *same* variate sequence from the same
    # per-quantity streams as the scalar path — chunk sizes, write-mix
    # and seek uniforms, slot uniforms, think times, phase steps — but
    # in whole blocks, with the per-chunk while loops replaced by
    # searchsorted cuts against the chunk block's cached prefix sums.
    # Because every quantity owns a named stream and both paths consume
    # each stream strictly in draw order, the emitted streams are
    # byte-identical; tests/core/test_columnar_golden.py holds scalar vs
    # columnar equality across every scenario.

    def _append_data_cols(self, budget: int, file_size: int,
                          write_fraction: float, cols: _SessionColumns,
                          row0: int) -> int:
        """Vectorized :meth:`_data_ops`, appended straight into ``cols``.

        Emits the identical row sequence — chunked read/write ops plus
        the interleaved lseek rows (wrap-to-zero in sequential mode, one
        per chunk in random mode) — and registers each chunk segment's
        write-mix range (patched once per session).  ``row0`` is the
        global row index of the first appended row; returns the number
        of rows appended.
        """
        if budget <= 0 or file_size <= 0:
            return 0
        kind_segs = cols.kind_segs
        size_segs = cols.size_segs
        row = row0
        if self.access_pattern == "random":
            remaining = budget
            while remaining > 0:
                san = self._chunk.san_view()
                seeks = self._seek.peek_buffer()
                width = min(len(san), len(seeks), _CHUNK_SLAB)
                offsets = np.minimum(
                    (seeks[:width] * file_size).astype(np.int64),
                    file_size - 1,
                )
                candidates = np.minimum(
                    san[:width], (file_size - offsets).astype(np.float64)
                )
                np.minimum(candidates, float(remaining), out=candidates)
                total = np.cumsum(candidates)
                cut = int(total.searchsorted(float(remaining), side="left"))
                if cut >= width:
                    take = width
                    advanced = int(total[-1])
                else:
                    take = cut + 1
                    advanced = remaining
                chunks = candidates[:take].astype(np.int64)
                if cut < width:
                    chunks[cut] = remaining - (int(total[cut - 1])
                                               if cut else 0)
                self._chunk.consume(take)
                self._seek.consume(take)
                sizes = np.empty(2 * take, dtype=np.int64)
                sizes[0::2] = offsets[:take]
                sizes[1::2] = chunks
                kind_segs.append(_LSEEK_READ_PAIRS[:2 * take])
                size_segs.append(sizes)
                cols.mix_start.append(row + 1)
                cols.mix_count.append(take)
                cols.mix_step.append(2)
                cols.mix_wf.append(write_fraction)
                row += 2 * take
                remaining -= advanced
        else:
            position = 0
            remaining = budget
            while remaining > 0:
                if position >= file_size:
                    kind_segs.append(_LSEEK_ROW)
                    size_segs.append(_ZERO_I64)
                    row += 1
                    position = 0
                chunks, advanced, _ = self._chunk.run(
                    min(remaining, file_size - position)
                )
                take = len(chunks)
                kind_segs.append(_READ_RUN[:take])
                size_segs.append(chunks)
                cols.mix_start.append(row)
                cols.mix_count.append(take)
                cols.mix_step.append(1)
                cols.mix_wf.append(write_fraction)
                row += take
                position += advanced
                remaining -= advanced
        return row - row0

    def _append_write_out(self, target_size: int,
                          cols: _SessionColumns) -> int:
        """Vectorized :meth:`_write_out_ops`; returns rows appended."""
        count = 0
        remaining = target_size
        while remaining > 0:
            chunks, advanced, _ = self._chunk.run(remaining)
            cols.kind_segs.append(_WRITE_RUN[:len(chunks)])
            cols.size_segs.append(chunks)
            count += len(chunks)
            remaining -= advanced
        return count

    def _append_plan_for_existing(self, samplers: _UsageSamplers, path: str,
                                  file_size: int,
                                  cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_existing`: open → data ops → close."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        budget = self._sample_access_budget(samplers, file_size)
        write_fraction = 0.5 if category.use is UseType.RD_WRT else 0.0
        mode = OpenFlags.RDWR if category.writes else OpenFlags.RDONLY
        start = cols.total
        cols.kind_segs.append(_OPEN_ROW)
        cols.size_segs.append([file_size])
        n = 1 + self._append_data_cols(budget, file_size, write_fraction,
                                       cols, start + 1)
        cols.kind_segs.append(_CLOSE_ROW)
        cols.size_segs.append(_ZERO_I64)
        n += 1
        path_id = cols.paths.intern(path)
        cols.path_pos += (start, start + n - 1)
        cols.path_val += (path_id, path_id)
        if mode:
            cols.flag_pos.append(start)
            cols.flag_val.append(int(mode))
        cols.add_plan(n, plan_id, cols.categories.intern(category.key))

    def _append_plan_for_new(self, samplers: _UsageSamplers, path: str,
                             temporary: bool,
                             cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_new`: creat, write out, re-read,
        close (+unlink for TEMP)."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        target_size = self._sample_file_size(samplers)
        start = cols.total
        cols.kind_segs.append(_CREAT_ROW)
        cols.size_segs.append([target_size])
        n = 1 + self._append_write_out(target_size, cols)
        budget = self._sample_access_budget(samplers, target_size)
        read_budget = max(0, budget - target_size)
        if read_budget > 0:
            cols.kind_segs.append(_LSEEK_ROW)
            cols.size_segs.append(_ZERO_I64)
            n += 1
            n += self._append_data_cols(read_budget, target_size, 0.0,
                                        cols, start + n)
        cols.kind_segs.append(_CLOSE_ROW)
        cols.size_segs.append(_ZERO_I64)
        n += 1
        path_id = cols.paths.intern(path)
        cols.path_pos += (start, start + n - 1)  # creat and close rows
        cols.path_val += (path_id, path_id)
        if temporary:
            cols.kind_segs.append(_UNLINK_ROW)
            cols.size_segs.append(_ZERO_I64)
            n += 1
            cols.path_pos.append(start + n - 1)
            cols.path_val.append(path_id)
            cols.plan_fix_pos.append(start + n - 1)
            cols.plan_fix_val.append(-1)  # unlink carries no plan id
        cols.flag_pos.append(start)
        cols.flag_val.append(_CREAT_FLAGS)
        cols.add_plan(n, plan_id, cols.categories.intern(category.key))

    def _append_plan_for_directory(self, samplers: _UsageSamplers, path: str,
                                   dir_size: int,
                                   cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_directory`: stat + per-pass listdir."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        passes = max(1, int(round(self._sample_ratio(samplers))))
        n = 1 + passes
        kinds = np.full(n, KIND_LISTDIR, dtype=np.int8)
        kinds[0] = KIND_STAT
        start = cols.total
        cols.kind_segs.append(kinds)
        cols.size_segs.append(np.full(n, dir_size, dtype=np.int64))
        path_id = cols.paths.intern(path)
        cols.path_pos.extend(range(start, start + n))
        cols.path_val.extend([path_id] * n)
        cols.plan_fix_pos.append(start)  # only stat carries the plan id
        cols.plan_fix_val.append(plan_id)
        cols.add_plan(n, -1, cols.categories.intern(category.key))

    def _think_col(self, n: int) -> np.ndarray:
        """``n`` think times (µs, int64) — the vectorized
        :meth:`_sample_think_us`, phase modulation included."""
        raw = self._think.take(n)
        if self.phase_model is not None:
            raw = raw * self.phase_model.step_many(self._phase.take(n))
        ok = np.isfinite(raw) & (raw >= 0.0)
        think = np.zeros(n, dtype=np.float64)
        np.rint(raw, where=ok, out=think)
        return np.minimum(think, _INT64_SATURATE).astype(np.int64)

    def generate_session_batch(self, session_id: int) -> OpBatch:
        """The columnar :meth:`generate_session`: one login session as an
        :class:`~repro.core.opbatch.OpBatch`.

        Row ``i`` is the ``i``-th file operation; the think pause that
        follows it lands in the batch's ``think_us`` column (the exact
        stream :meth:`generate_session` yields, re-interleavable via
        :meth:`~repro.core.opbatch.OpBatch.iter_session_ops`).  Timing
        columns are zero; an execution backend fills them.
        """
        cols = _SessionColumns(StringTable(), StringTable())
        for shape, samplers, path, extra in self._session_plan_specs(
            session_id
        ):
            if shape == "new":
                self._append_plan_for_new(samplers, path, extra, cols)
            elif shape == "dir":
                self._append_plan_for_directory(samplers, path, extra, cols)
            else:
                self._append_plan_for_existing(samplers, path, extra, cols)

        # Interleave plans exactly as generate_session does: same FIFO
        # admission to the open-file window, same per-op slot uniform.
        # Every op consumes exactly one "slot" draw, so the whole
        # session's uniforms arrive as one pre-drawn block and the loop
        # is pure Python bookkeeping — no per-op RNG call.
        lengths = cols.lengths
        offsets: list[int] = []
        end = 0
        for length in lengths:
            offsets.append(end)
            end += length
        n = cols.total
        uniforms = self._slot.take(n).tolist()
        pending = deque(range(len(lengths)))
        popleft = pending.popleft
        cursor: list[int] = []     # per active slot: next global row
        remaining: list[int] = []  # per active slot: ops left
        order = [0] * n
        max_open = self.user_type.max_open_files
        width = 0
        for i, u in enumerate(uniforms):
            if width < max_open and pending:
                while pending and width < max_open:
                    j = popleft()
                    cursor.append(offsets[j])
                    remaining.append(lengths[j])
                    width += 1
            s = int(u * width)
            if s == width:  # float rounding of u ≈ 1 (see _seek_offset)
                s = width - 1
            row = cursor[s]
            order[i] = row
            left = remaining[s] - 1
            if left:
                cursor[s] = row + 1
                remaining[s] = left
            else:
                del cursor[s]
                del remaining[s]
                width -= 1

        user_types = StringTable()
        type_idx = user_types.intern(self.user_type.name)
        if not lengths:
            batch = OpBatch.empty(0, cols.paths, cols.categories, user_types)
            batch.think_us = self._think_col(0)
            return batch

        kinds = np.concatenate(cols.kind_segs)
        if cols.mix_count:
            # One write-mix block for the whole session: same draws, in
            # the same per-stream order, as the scalar per-op draws.
            counts = np.asarray(cols.mix_count)
            total_mix = int(counts.sum())
            mix = self._write_mix.take(total_mix)
            writes = mix < np.repeat(np.asarray(cols.mix_wf), counts)
            if writes.any():
                head = np.empty(len(counts), dtype=np.int64)
                head[0] = 0
                np.cumsum(counts[:-1], out=head[1:])
                intra = np.arange(total_mix) - np.repeat(head, counts)
                rows = (np.repeat(np.asarray(cols.mix_start), counts)
                        + intra * np.repeat(np.asarray(cols.mix_step),
                                            counts))
                kinds[rows[writes]] = KIND_WRITE
        perm = np.asarray(order, dtype=np.int64)
        reps = np.asarray(lengths)
        plan_col = np.repeat(np.asarray(cols.plan_base, dtype=np.int64), reps)
        if cols.plan_fix_pos:
            plan_col[cols.plan_fix_pos] = cols.plan_fix_val
        path_col = np.full(n, -1, dtype=np.int32)
        path_col[cols.path_pos] = cols.path_val
        flags_col = np.zeros(n, dtype=np.int16)
        if cols.flag_pos:
            flags_col[cols.flag_pos] = cols.flag_val
        batch = OpBatch(
            kinds=kinds[perm],
            plan_ids=plan_col[perm],
            sizes=np.concatenate(cols.size_segs)[perm],
            flags=flags_col[perm],
            path_idx=path_col[perm],
            category_idx=np.repeat(
                np.asarray(cols.cat_base, dtype=np.int32), reps)[perm],
            user_ids=np.full(n, self.user_id, dtype=np.int64),
            session_ids=np.full(n, session_id, dtype=np.int64),
            user_type_idx=np.full(n, type_idx, dtype=np.int32),
            start_us=np.zeros(n, dtype=np.float64),
            response_us=np.zeros(n, dtype=np.float64),
            think_us=self._think_col(n),
            paths=cols.paths,
            categories=cols.categories,
            user_types=user_types,
        )
        return batch
