"""Pure operation synthesis — the *what* of the workload, with no timing.

Section 4.1.3's USIM repeatedly selects "a file access operation to be
performed, the file on which to perform the operation, the amount of this
file to access, and the time delay to the next operation".  This module
implements exactly that selection as a pure, deterministic function of
``(root seed, user id)`` — stage two of the generation pipeline:

1. **plan** — :meth:`~repro.core.generator.WorkloadGenerator` assigns
   user types and builds the FSC layout manifest;
2. **synthesize** (this module) — :class:`SessionGenerator` turns a user
   type's usage distributions into a stream of :class:`SessionOp`
   system-call operations for each login session;
3. **execute** — an :class:`~repro.core.execution.ExecutionBackend`
   replays the stream and attaches timing (discrete-event simulation,
   analytic fast replay, or a real file system).

Nothing here imports the simulator: the op stream exists independently of
how (or whether) it is timed, which is what lets the fast backend skip
the DES entirely while producing a byte-identical stream.

Sampling is *batched*: every per-quantity random stream is wrapped in a
:class:`~repro.distributions.batch.BatchSampler` that pre-draws blocks of
variates with one vectorized call instead of paying NumPy's scalar-call
overhead per operation.

Sessions come out in either of two byte-identical representations:
:meth:`SessionGenerator.generate_session` yields scalar
:class:`SessionOp` objects, and
:meth:`SessionGenerator.generate_session_batch` builds the same stream
as one columnar :class:`~repro.core.opbatch.OpBatch` — the per-chunk
loops replaced by ``searchsorted`` cuts over pre-drawn blocks — for the
array-native fast backend.

Extensions beyond the thesis's minimum (its section 6.2 future work):

* ``access_pattern="random"`` switches the per-file access from purely
  sequential to uniform random offsets (the database-style behaviour the
  thesis flags as unsupported);
* :class:`PhaseModel` gives a user time-varying behaviour via a two-state
  Markov chain (I/O-bound vs CPU-bound think-time multipliers).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..distributions import BatchSampler, RandomStreams, Uniform
from ..vfs import OpenFlags
from .fsc import FileSystemLayout
from .opbatch import (
    KIND_CLOSE,
    KIND_CREAT,
    KIND_LISTDIR,
    KIND_LSEEK,
    KIND_OPEN,
    KIND_READ,
    KIND_STAT,
    KIND_UNLINK,
    KIND_WRITE,
    OpBatch,
    StringTable,
)
from .spec import UsageSpec, UserTypeSpec, UseType

__all__ = [
    "SessionOp",
    "PhaseModel",
    "SessionGenerator",
]

# int64 cannot hold every Python int a pathological (but finite) draw
# could produce; the columnar path saturates instead of wrapping.  Real
# specs live many orders of magnitude below this.
_INT64_SATURATE = float(2**63 - 1024)

_EMPTY_I8 = np.empty(0, dtype=np.int8)
_EMPTY_I64 = np.empty(0, dtype=np.int64)

# Max chunk variates sanitised per cumsum pass (see _chunk_run).
_CHUNK_SLAB = 64

# Rows a plan builder reserves before a chunk run: one run never exceeds
# the chunk sampler's block size (512 in SessionGenerator.__init__).
_CHUNK_RESERVE = 512

_CREAT_FLAGS = int(OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)

_UNIT = Uniform(0.0, 1.0)


@dataclass(frozen=True)
class SessionOp:
    """One element of a session's operation stream.

    ``size`` is overloaded per kind: file size for open/creat, byte count
    for read/write/listdir, absolute offset for lseek, microseconds for
    think.
    """

    kind: str                       # open|creat|read|write|lseek|close|
    #                                 unlink|stat|listdir|think
    plan_id: int | None = None      # links data ops to their open file
    path: str | None = None
    category_key: str | None = None
    size: int = 0
    flags: OpenFlags = OpenFlags.RDONLY


class PhaseModel:
    """Two-state Markov modulation of think time (section 6.2 extension).

    State ``io`` uses the base think-time distribution; state ``cpu``
    multiplies it by ``cpu_multiplier`` (the user is computing, not doing
    I/O).  Transition probabilities are per-operation.
    """

    def __init__(self, cpu_multiplier: float = 8.0,
                 p_enter_cpu: float = 0.05, p_exit_cpu: float = 0.3):
        if cpu_multiplier < 0:
            raise ValueError("cpu_multiplier must be >= 0")
        for name, p in (("p_enter_cpu", p_enter_cpu), ("p_exit_cpu", p_exit_cpu)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability")
        self.cpu_multiplier = cpu_multiplier
        self.p_enter_cpu = p_enter_cpu
        self.p_exit_cpu = p_exit_cpu
        self.state = "io"

    def step(self, u: float) -> float:
        """Advance the chain one step on uniform draw ``u``; return the
        current think-time multiplier."""
        if self.state == "io":
            if u < self.p_enter_cpu:
                self.state = "cpu"
        else:
            if u < self.p_exit_cpu:
                self.state = "io"
        return self.cpu_multiplier if self.state == "cpu" else 1.0

    def multiplier(self, rng) -> float:
        """Advance the chain one step drawing from ``rng`` directly."""
        return self.step(float(rng.random()))

    def step_many(self, us: np.ndarray) -> np.ndarray:
        """Advance the chain once per element of ``us``; return the
        multiplier sequence.  Equivalent to ``[self.step(u) for u in us]``
        (the chain is a sequential recurrence, so this stays a loop — but
        one over a pre-drawn array, matching the columnar think path)."""
        out = np.empty(len(us), dtype=np.float64)
        cpu = self.state == "cpu"
        p_enter, p_exit = self.p_enter_cpu, self.p_exit_cpu
        multiplier = self.cpu_multiplier
        for i, u in enumerate(us.tolist()):
            if cpu:
                if u < p_exit:
                    cpu = False
            elif u < p_enter:
                cpu = True
            out[i] = multiplier if cpu else 1.0
        self.state = "cpu" if cpu else "io"
        return out


class _FilePlan:
    """A per-file script: open → data ops → close (+unlink for TEMP)."""

    def __init__(self, plan_id: int, ops: list[SessionOp]):
        self.plan_id = plan_id
        self._ops = ops
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._ops)

    def pop(self) -> SessionOp:
        op = self._ops[self._next]
        self._next += 1
        return op


def _stream_factory(streams: RandomStreams, name: str) -> Callable[[], np.random.Generator]:
    """A zero-arg constructor for ``streams.get(name)``.

    Handed to :class:`BatchSampler` as ``rng_factory`` so streams that a
    user never draws (a usage entry whose fraction gate never fires, the
    ``size:`` stream of a non-creating category) never pay generator
    setup.  Resolution order cannot matter: an unbuilt generator was
    never consumed.
    """
    def make() -> np.random.Generator:
        return streams.get(name)
    return make


@dataclass(frozen=True)
class _UsageSamplers:
    """The batched per-usage-entry samplers (one set per file category).

    Alongside the samplers, the per-entry *constants* the hot plan loop
    needs (category key, write fraction, open-mode flag, ...) are
    precomputed once per kernel instead of re-derived per plan.  The
    object is pooled: :meth:`SessionGenerator.rebind_user` rebinds the
    inner samplers to a new user's streams in place.
    """

    usage: UsageSpec
    file_count: BatchSampler
    access_per_byte: BatchSampler
    file_size: BatchSampler
    key: str
    creates: bool
    temporary: bool
    is_dir: bool
    prefix: str
    write_fraction: float
    mode_flag: int


class _ChunkBlock(BatchSampler):
    """Chunk-size sampler whose blocks carry a sanitised prefix-sum cache.

    Every refilled block is sanitised once (finite, rounded, >= 1 — the
    vectorized :meth:`SessionGenerator._sample_chunk` clamp) and
    prefix-summed, so cutting a segment of chunks to a byte boundary is
    a single ``searchsorted`` over the cached sums instead of a fresh
    sanitise + cumsum per segment.  ``draw()`` still serves the *raw*
    variates, keeping the scalar path untouched.
    """

    __slots__ = ("san", "cum0")

    def __init__(self, dist, rng, block: int = 512):
        super().__init__(dist, rng, block=block)
        self.san: np.ndarray | None = None
        self.cum0: np.ndarray | None = None

    def _refill(self) -> np.ndarray:
        buffer = super()._refill()
        san = np.maximum(
            np.where(np.isfinite(buffer), np.rint(buffer), 1.0), 1.0
        )
        # int64 saturation: keeps the astype in run() defined even for
        # absurd finite draws (the byte boundary always cuts first).
        np.minimum(san, _INT64_SATURATE, out=san)
        self.san = san
        cum0 = np.empty(len(san) + 1, dtype=np.float64)
        cum0[0] = 0.0
        np.cumsum(san, out=cum0[1:])
        self.cum0 = cum0
        return buffer

    def rebind(self, rng=None, rng_factory=None) -> "_ChunkBlock":
        """:meth:`BatchSampler.rebind` plus dropping the prefix-sum cache."""
        super().rebind(rng, rng_factory)
        self.san = None
        self.cum0 = None
        return self

    def san_view(self) -> np.ndarray:
        """Sanitised not-yet-consumed variates (refills when spent)."""
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            self._refill()
        return self.san[self._next:]

    def run_into(self, out: np.ndarray, row: int,
                 boundary: int) -> tuple[int, int]:
        """Consume chunks up to ``boundary`` bytes into ``out[row:]``.

        Writes the consumed run straight into the caller's float64 row
        buffer (no per-segment allocation or cast — the whole size
        column is cast to int64 once per batch) and returns
        ``(take, advanced)``.  The crossing chunk is cut to land
        exactly on the boundary, as the scalar per-draw clamp does.
        May advance fewer bytes than ``boundary`` when the block runs
        out — the caller loops, and the next call refills.  The caller
        must have reserved ``row + block`` rows (a run never exceeds
        the block size).
        """
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            self._refill()
        start = self._next
        cum0 = self.cum0
        base = cum0[start]
        # Element j's running total is cum0[j+1]; the crossing element is
        # the first whose total reaches base + boundary.
        cut = int(cum0.searchsorted(base + boundary, side="left")) - 1
        limit = len(self.san)
        if cut >= limit:
            take = limit - start
            out[row:row + take] = self.san[start:]
            self._next = limit
            return take, int(cum0[limit] - base)
        take = cut + 1 - start
        out[row:row + take] = self.san[start:cut + 1]
        out[row + take - 1] = boundary - (cum0[cut] - base)
        self._next = cut + 1
        return take, boundary


class _SessionColumns:
    """Accumulates a user's plan columns without per-plan arrays.

    Plan builders write kind/size rows straight into two growable flat
    buffers (``kinds_buf``/``sizes_buf`` — int8 kinds, float64 sizes so
    a chunk sampler's sanitised block can land by slice without a
    per-segment cast) plus sparse fix-up lists; the
    constant-within-a-plan columns (plan id, category) are materialised
    at the end with one ``np.repeat`` over the plan lengths, path /
    flag columns with one fancy assignment each, and the size column
    with one ``astype(int64)`` pass — so building a session costs
    O(plans) small Python appends plus O(ops) vectorized slice writes,
    with no per-plan allocation and no final concatenation.
    """

    __slots__ = (
        "paths", "categories", "kinds_buf", "sizes_buf", "cap", "lengths",
        "plan_base", "cat_base", "plan_fix_pos", "plan_fix_val",
        "path_pos", "path_ord", "plan_paths", "flag_pos", "flag_val",
        "mix_start", "mix_count", "mix_step", "mix_wf", "total",
    )

    def __init__(self, paths: StringTable, categories: StringTable,
                 capacity: int = 4096):
        self.paths = paths
        self.categories = categories
        self.cap = capacity
        self.kinds_buf = np.empty(capacity, dtype=np.int8)
        self.sizes_buf = np.empty(capacity, dtype=np.float64)
        self.lengths: list[int] = []
        self.plan_base: list[int] = []   # np.repeat fill per plan
        self.cat_base: list[int] = []
        self.plan_fix_pos: list[int] = []  # sparse overrides (unlink/stat)
        self.plan_fix_val: list[int] = []
        # Paths are *deferred*: builders append the string to plan_paths
        # and record its ordinal, and the whole vocabulary is interned in
        # one StringTable.intern_many call at assembly time.
        self.path_pos: list[int] = []
        self.path_ord: list[int] = []
        self.plan_paths: list[str] = []
        self.flag_pos: list[int] = []
        self.flag_val: list[int] = []
        # Write-mix draw ranges: each chunk segment that consumes
        # write-mix uniforms records (first row, count, row stride,
        # write fraction); the draws happen once per session, in range
        # order — the same order the scalar loop consumes them.
        self.mix_start: list[int] = []
        self.mix_count: list[int] = []
        self.mix_step: list[int] = []
        self.mix_wf: list[float] = []
        self.total = 0

    def add_plan(self, n: int, plan_value: int, cat_idx: int) -> None:
        """Close one plan of ``n`` rows (rows already written)."""
        self.lengths.append(n)
        self.plan_base.append(plan_value)
        self.cat_base.append(cat_idx)
        self.total += n

    def reserve(self, need: int) -> None:
        """Grow the row buffers to hold at least ``need`` rows.

        Geometric doubling; existing rows (``[0, total)`` plus any rows
        the current plan has written past ``total``) are preserved, so
        builders re-fetch ``kinds_buf``/``sizes_buf`` after any call
        that may grow.
        """
        cap = self.cap
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        kinds = np.empty(cap, dtype=np.int8)
        kinds[: len(self.kinds_buf)] = self.kinds_buf
        sizes = np.empty(cap, dtype=np.float64)
        sizes[: len(self.sizes_buf)] = self.sizes_buf
        self.kinds_buf = kinds
        self.sizes_buf = sizes
        self.cap = cap


class SessionGenerator:
    """Generates login-session operation streams for one virtual user.

    Determinism contract (load-bearing for :mod:`repro.fleet` and for
    cross-backend stream identity): all of a user's randomness comes from
    ``streams.fork(f"user-{user_id}")``, a family derived from the *root*
    seed and the user id alone, with one named sub-stream per sampled
    quantity (selection, plan-interleave slots, per-category
    counts/budgets/sizes, chunk sizes, write mix, seek offsets, think
    times, phase transitions).  A user's
    operation stream is therefore identical no matter which other users
    run alongside it, which worker process it runs in, or which execution
    backend replays it — this is what makes sharded fleet runs aggregate
    bit-for-bit to the single-process result and what lets the fast
    backend reproduce the DES op stream exactly.  The temporal load
    layer (:mod:`repro.core.arrivals`) draws from the *same* family
    under its own names (``first-login``, ``session-gap``), so enabling
    arrivals moves the timeline without touching any synthesis stream.

    The per-quantity streams also make block pre-drawing safe: a
    :class:`~repro.distributions.BatchSampler` refills from its own
    stream in bursts, which would reorder draws on a shared stream but is
    invisible on a dedicated one.
    """

    def __init__(
        self,
        user_type: UserTypeSpec,
        layout: FileSystemLayout,
        streams: RandomStreams,
        user_id: int,
        access_pattern: str = "sequential",
        phase_model: PhaseModel | None = None,
    ):
        if access_pattern not in ("sequential", "random"):
            raise ValueError(
                "access_pattern must be sequential|random, got "
                f"{access_pattern!r}"
            )
        self.user_type = user_type
        self.layout = layout
        self.user_id = user_id
        self.access_pattern = access_pattern
        self.phase_model = phase_model
        self._root = streams
        base = streams.fork(f"user-{user_id}")
        self._rng_select = base.get("select")
        # Plan interleaving draws from its own uniform stream ("slot",
        # distinct from "select") so the columnar path can pre-draw a
        # whole session's slot uniforms in one block: a uniform is
        # bound-independent (slot = floor(u * width)), unlike bounded
        # integer draws whose bit consumption depends on the bound.
        self._slot = BatchSampler(_UNIT, base.get("slot"), block=512)
        self._chunk = _ChunkBlock(user_type.access_size, base.get("chunk"),
                                  block=512)
        self._think = BatchSampler(user_type.think_time, base.get("think"),
                                   block=512)
        # Streams that may never be drawn — the write mix of an all-read
        # session, seek offsets outside random mode, phase steps without
        # a phase model, and the per-category count/budget/size streams
        # of entries whose fraction gate never fires — are built lazily
        # at first draw.  Skipping (or deferring) their generator setup
        # cannot change any stream: an unbuilt generator is never
        # consumed.
        self._write_mix = BatchSampler(
            _UNIT, rng_factory=_stream_factory(base, "write-mix"), block=512)
        self._seek = (
            BatchSampler(_UNIT, rng_factory=_stream_factory(base, "seek"),
                         block=256)
            if access_pattern == "random" else None)
        self._phase = (
            BatchSampler(_UNIT, rng_factory=_stream_factory(base, "phase"),
                         block=256)
            if phase_model is not None else None)
        self._usage_samplers = tuple(
            _UsageSamplers(
                usage=usage,
                file_count=BatchSampler(
                    usage.file_count, block=32,
                    rng_factory=_stream_factory(
                        base, f"count:{usage.category.key}"),
                ),
                access_per_byte=BatchSampler(
                    usage.access_per_byte, block=128,
                    rng_factory=_stream_factory(
                        base, f"apb:{usage.category.key}"),
                ),
                file_size=BatchSampler(
                    usage.file_size, block=32,
                    rng_factory=_stream_factory(
                        base, f"size:{usage.category.key}"),
                ),
                key=usage.category.key,
                creates=usage.category.creates_files,
                temporary=usage.category.use is UseType.TEMP,
                is_dir=usage.category.is_directory,
                prefix=("tmp" if usage.category.use is UseType.TEMP
                        else "new"),
                write_fraction=(0.5 if usage.category.use is UseType.RD_WRT
                                else 0.0),
                mode_flag=int(OpenFlags.RDWR if usage.category.writes
                              else OpenFlags.RDONLY),
            )
            for usage in user_type.usage
        )
        self._plan_counter = 0

    def rebind_user(self, user_id: int,
                    phase_model: PhaseModel | None = None
                    ) -> "SessionGenerator":
        """Re-target this kernel at another user of the same type.

        The pooled per-user setup: every sampler object, chunk-block
        buffer and precomputed per-entry constant is *reused* — only the
        random streams are re-derived (``fork(f"user-{user_id}")``, the
        same derivation ``__init__`` performs) and every sampler's block
        is dropped, so the first draw after a rebind refills from the
        new user's stream.  The served sequences are therefore exactly
        those of a freshly constructed generator
        (``tests/core/test_pooled_state.py``), at a fraction of the
        setup cost.  Callers must drain one user fully before rebinding
        (the engine-free executors do).
        """
        base = self._root.fork(f"user-{user_id}")
        self.user_id = user_id
        self.phase_model = phase_model
        self._rng_select = base.get("select")
        self._slot.rebind(base.get("slot"))
        self._chunk.rebind(base.get("chunk"))
        self._think.rebind(base.get("think"))
        self._write_mix.rebind(rng_factory=_stream_factory(base, "write-mix"))
        if self._seek is not None:
            self._seek.rebind(rng_factory=_stream_factory(base, "seek"))
        if phase_model is not None:
            factory = _stream_factory(base, "phase")
            if self._phase is None:
                self._phase = BatchSampler(_UNIT, rng_factory=factory,
                                           block=256)
            else:
                self._phase.rebind(rng_factory=factory)
        else:
            self._phase = None
        for samplers in self._usage_samplers:
            key = samplers.key
            samplers.file_count.rebind(
                rng_factory=_stream_factory(base, f"count:{key}"))
            samplers.access_per_byte.rebind(
                rng_factory=_stream_factory(base, f"apb:{key}"))
            samplers.file_size.rebind(
                rng_factory=_stream_factory(base, f"size:{key}"))
        self._plan_counter = 0
        return self

    # -- sampling helpers --------------------------------------------------------

    # Fitted distributions can emit pathological variates (NaN from a
    # degenerate fit, negative values from a shifted family).  Each helper
    # clamps to its quantity's valid range instead of letting the value
    # reach an executor — where it would surface much later as an
    # ``int(nan)`` ValueError or a negative Delay SimulationError.

    def _sample_count(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_count.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_ratio(self, samplers: _UsageSamplers) -> float:
        """A non-negative, finite accesses-per-byte draw."""
        ratio = samplers.access_per_byte.draw()
        if not math.isfinite(ratio) or ratio < 0.0:
            return 0.0
        return ratio

    def _sample_access_budget(self, samplers: _UsageSamplers,
                              file_size: int) -> int:
        return int(round(self._sample_ratio(samplers) * file_size))

    def _sample_file_size(self, samplers: _UsageSamplers) -> int:
        raw = samplers.file_size.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, int(round(raw)))

    def _sample_chunk(self, remaining: int) -> int:
        raw = self._chunk.draw()
        if not math.isfinite(raw):
            return 1
        return max(1, min(int(round(raw)), remaining))

    def _sample_think_us(self) -> int:
        raw = self._think.draw()
        if self.phase_model is not None:
            raw *= self.phase_model.step(self._phase.draw())
        if not math.isfinite(raw) or raw < 0.0:
            return 0
        return int(round(raw))

    def _seek_offset(self, file_size: int) -> int:
        """A uniform random offset in ``[0, file_size)`` (random mode)."""
        return min(int(self._seek.draw() * file_size), file_size - 1)

    # -- per-category plan construction ------------------------------------------

    def _data_ops(self, plan_id: int, budget: int, file_size: int,
                  write_fraction: float,
                  category_key: str | None = None) -> list[SessionOp]:
        """Chunked read/write ops consuming ``budget`` bytes of a file.

        Sequential mode walks the file, wrapping to offset 0 at EOF (the
        thesis models sequential access only); random mode seeks to a
        uniform offset before every chunk.
        """
        ops: list[SessionOp] = []
        if budget <= 0 or file_size <= 0:
            return ops
        position = 0
        remaining = budget
        while remaining > 0:
            if self.access_pattern == "random":
                position = self._seek_offset(file_size)
                ops.append(SessionOp("lseek", plan_id=plan_id, size=position,
                                     category_key=category_key))
            elif position >= file_size:
                position = 0
                ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                     category_key=category_key))
            chunk = self._sample_chunk(min(remaining, file_size - position
                                           if self.access_pattern == "sequential"
                                           else remaining))
            chunk = min(chunk, file_size - position)
            if chunk <= 0:
                position = 0
                continue
            is_write = self._write_mix.draw() < write_fraction
            ops.append(
                SessionOp(
                    "write" if is_write else "read",
                    plan_id=plan_id,
                    size=chunk,
                    category_key=category_key,
                )
            )
            position += chunk
            remaining -= chunk
        return ops

    def _write_out_ops(self, plan_id: int, target_size: int,
                       category_key: str | None = None) -> list[SessionOp]:
        """Sequential writes creating ``target_size`` bytes of fresh file."""
        ops: list[SessionOp] = []
        written = 0
        while written < target_size:
            chunk = self._sample_chunk(target_size - written)
            ops.append(SessionOp("write", plan_id=plan_id, size=chunk,
                                 category_key=category_key))
            written += chunk
        return ops

    def _plan_for_existing(self, samplers: _UsageSamplers, path: str,
                           file_size: int) -> _FilePlan:
        """RDONLY / RD-WRT plan over a file the FSC created."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        budget = self._sample_access_budget(samplers, file_size)
        write_fraction = 0.5 if category.use is UseType.RD_WRT else 0.0
        mode = OpenFlags.RDWR if category.writes else OpenFlags.RDONLY
        ops = [
            SessionOp("open", plan_id=plan_id, path=path,
                      category_key=category.key, size=file_size, flags=mode)
        ]
        ops.extend(self._data_ops(plan_id, budget, file_size, write_fraction,
                                  category_key=category.key))
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_new(self, samplers: _UsageSamplers, path: str,
                      temporary: bool) -> _FilePlan:
        """NEW / TEMP plan: create, write out, (re-read and unlink)."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        target_size = self._sample_file_size(samplers)
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        ops = [
            SessionOp("creat", plan_id=plan_id, path=path,
                      category_key=category.key, size=target_size,
                      flags=flags)
        ]
        ops.extend(self._write_out_ops(plan_id, target_size,
                                       category_key=category.key))
        # Spend the rest of the category's access budget re-reading the
        # fresh file: Table 5.2 gives NEW files 2.36 accesses per byte and
        # TEMP files 2.00, i.e. well beyond the single write-out pass.
        budget = self._sample_access_budget(samplers, target_size)
        read_budget = max(0, budget - target_size)
        if read_budget > 0:
            ops.append(SessionOp("lseek", plan_id=plan_id, size=0,
                                 category_key=category.key))
            ops.extend(
                self._data_ops(plan_id, read_budget, target_size, 0.0,
                               category_key=category.key)
            )
        ops.append(SessionOp("close", plan_id=plan_id, path=path,
                             category_key=category.key))
        if temporary:
            ops.append(SessionOp("unlink", path=path,
                                 category_key=category.key))
        return _FilePlan(plan_id, ops)

    def _plan_for_directory(self, samplers: _UsageSamplers, path: str,
                            dir_size: int) -> _FilePlan:
        """DIR plan: stat once, then one readdir per whole-directory pass."""
        category = samplers.usage.category
        plan_id = self._next_plan_id()
        passes = max(1, int(round(self._sample_ratio(samplers))))
        ops = [SessionOp("stat", path=path, category_key=category.key,
                         plan_id=plan_id, size=dir_size)]
        for _ in range(passes):
            ops.append(SessionOp("listdir", path=path,
                                 category_key=category.key, size=dir_size))
        return _FilePlan(plan_id, ops)

    def _next_plan_id(self) -> int:
        self._plan_counter += 1
        return self._plan_counter

    # -- session assembly ------------------------------------------------------------

    def _session_plan_specs(self, session_id: int):
        """Yield one ``(shape, samplers, path, extra)`` spec per file plan.

        This is the session's *selection* walk — which categories fire,
        how many files, which pool members — shared verbatim by the
        scalar (:meth:`_build_plans`) and columnar
        (:meth:`generate_session_batch`) paths so both consume the
        ``select`` stream identically.  ``extra`` is the ``temporary``
        flag for ``"new"`` plans and the file/directory size otherwise.
        Specs are yielded lazily: new-file paths embed the live plan
        counter, which the consumer advances between specs exactly as
        the pre-refactor loop did.
        """
        for samplers in self._usage_samplers:
            usage = samplers.usage
            if self._rng_select.random() >= usage.fraction_of_users:
                continue
            category = usage.category
            count = self._sample_count(samplers)
            if category.creates_files:
                temporary = category.use is UseType.TEMP
                home = self.layout.user_home(self.user_id)
                prefix = "tmp" if temporary else "new"
                for k in range(count):
                    path = (
                        f"{home}/{prefix}-s{session_id:04d}-"
                        f"p{self._plan_counter:05d}-{k}"
                    )
                    yield "new", samplers, path, temporary
                continue
            pool = self.layout.files_for(category, self.user_id)
            if not pool:
                continue
            chosen_idx = self._rng_select.choice(
                len(pool), size=min(count, len(pool)), replace=False
            )
            for idx in chosen_idx.reshape(-1):
                record = pool[int(idx)]
                shape = "dir" if category.is_directory else "existing"
                yield shape, samplers, record.path, record.size

    def _build_plans(self, session_id: int) -> list[_FilePlan]:
        plans: list[_FilePlan] = []
        for shape, samplers, path, extra in self._session_plan_specs(
            session_id
        ):
            if shape == "new":
                plans.append(self._plan_for_new(samplers, path, extra))
            elif shape == "dir":
                plans.append(self._plan_for_directory(samplers, path, extra))
            else:
                plans.append(self._plan_for_existing(samplers, path, extra))
        return plans

    def generate_session(self, session_id: int) -> Iterator[SessionOp]:
        """Yield the operation stream of one login session.

        File plans are interleaved by independent random selection among
        the currently open files (the thesis's independence assumption),
        with at most ``user_type.max_open_files`` concurrently open.
        A think-time operation follows every file operation.
        """
        # deque: popping the head of a list is O(n) per pop, O(n²) per
        # session; popleft keeps the identical FIFO order in O(1).
        pending = deque(self._build_plans(session_id))
        active: list[_FilePlan] = []
        max_open = self.user_type.max_open_files
        while pending or active:
            while pending and len(active) < max_open:
                active.append(pending.popleft())
            if not active:
                break
            # One uniform per op; floor(u * width) can land on width
            # itself only through float rounding of u ≈ 1, hence the
            # clamp (same rule as _seek_offset).
            slot = int(self._slot.draw() * len(active))
            if slot == len(active):
                slot -= 1
            plan = active[slot]
            op = plan.pop()
            yield op
            if plan.exhausted:
                active.pop(slot)
            think = self._sample_think_us()
            yield SessionOp("think", size=think)

    # -- columnar synthesis ------------------------------------------------------
    #
    # The batch path draws the *same* variate sequence from the same
    # per-quantity streams as the scalar path — chunk sizes, write-mix
    # and seek uniforms, slot uniforms, think times, phase steps — but
    # in whole blocks, with the per-chunk while loops replaced by
    # searchsorted cuts against the chunk block's cached prefix sums.
    # Because every quantity owns a named stream and both paths consume
    # each stream strictly in draw order, the emitted streams are
    # byte-identical; tests/core/test_columnar_golden.py holds scalar vs
    # columnar equality across every scenario.

    def _append_data_cols(self, budget: int, file_size: int,
                          write_fraction: float, cols: _SessionColumns,
                          row0: int) -> int:
        """Vectorized :meth:`_data_ops`, appended straight into ``cols``.

        Emits the identical row sequence — chunked read/write ops plus
        the interleaved lseek rows (wrap-to-zero in sequential mode, one
        per chunk in random mode) — and registers each chunk segment's
        write-mix range (patched once per session).  ``row0`` is the
        global row index of the first appended row; returns the number
        of rows appended.
        """
        if budget <= 0 or file_size <= 0:
            return 0
        row = row0
        if self.access_pattern == "random":
            remaining = budget
            while remaining > 0:
                san = self._chunk.san_view()
                seeks = self._seek.peek_buffer()
                width = min(len(san), len(seeks), _CHUNK_SLAB)
                offsets = np.minimum(
                    (seeks[:width] * file_size).astype(np.int64),
                    file_size - 1,
                )
                candidates = np.minimum(
                    san[:width], (file_size - offsets).astype(np.float64)
                )
                np.minimum(candidates, float(remaining), out=candidates)
                total = np.cumsum(candidates)
                cut = int(total.searchsorted(float(remaining), side="left"))
                if cut >= width:
                    take = width
                    advanced = int(total[-1])
                else:
                    take = cut + 1
                    advanced = remaining
                    candidates[cut] = remaining - (int(total[cut - 1])
                                                   if cut else 0)
                self._chunk.consume(take)
                self._seek.consume(take)
                end = row + 2 * take
                cols.reserve(end)
                kinds_buf = cols.kinds_buf
                sizes_buf = cols.sizes_buf
                kinds_buf[row:end:2] = KIND_LSEEK
                kinds_buf[row + 1:end:2] = KIND_READ
                sizes_buf[row:end:2] = offsets[:take]
                sizes_buf[row + 1:end:2] = candidates[:take]
                cols.mix_start.append(row + 1)
                cols.mix_count.append(take)
                cols.mix_step.append(2)
                cols.mix_wf.append(write_fraction)
                row = end
                remaining -= advanced
        else:
            position = 0
            remaining = budget
            chunk = self._chunk
            reserve = cols.reserve
            while remaining > 0:
                if position >= file_size:
                    reserve(row + 1)
                    cols.kinds_buf[row] = KIND_LSEEK
                    cols.sizes_buf[row] = 0.0
                    row += 1
                    position = 0
                reserve(row + _CHUNK_RESERVE)
                take, advanced = chunk.run_into(
                    cols.sizes_buf, row, min(remaining, file_size - position)
                )
                cols.kinds_buf[row:row + take] = KIND_READ
                cols.mix_start.append(row)
                cols.mix_count.append(take)
                cols.mix_step.append(1)
                cols.mix_wf.append(write_fraction)
                row += take
                position += advanced
                remaining -= advanced
        return row - row0

    def _append_write_out(self, target_size: int, cols: _SessionColumns,
                          row0: int) -> int:
        """Vectorized :meth:`_write_out_ops`; returns rows appended."""
        row = row0
        remaining = target_size
        while remaining > 0:
            cols.reserve(row + _CHUNK_RESERVE)
            take, advanced = self._chunk.run_into(
                cols.sizes_buf, row, remaining)
            cols.kinds_buf[row:row + take] = KIND_WRITE
            row += take
            remaining -= advanced
        return row - row0

    def _append_plan_for_existing(self, path: str, file_size: int,
                                  budget: int, write_fraction: float,
                                  mode_flag: int, cat_idx: int,
                                  cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_existing`: open → data ops → close.

        The budget, write fraction, open mode and category index arrive
        precomputed from the entry-grouped walk
        (:meth:`_append_session_plans`) — this method only appends rows.
        """
        self._plan_counter += 1
        start = cols.total
        cols.reserve(start + 1)
        cols.kinds_buf[start] = KIND_OPEN
        cols.sizes_buf[start] = file_size
        n = 1 + self._append_data_cols(budget, file_size, write_fraction,
                                       cols, start + 1)
        end = start + n
        cols.reserve(end + 1)
        cols.kinds_buf[end] = KIND_CLOSE
        cols.sizes_buf[end] = 0.0
        n += 1
        ordinal = len(cols.plan_paths)
        cols.plan_paths.append(path)
        cols.path_pos += (start, start + n - 1)
        cols.path_ord += (ordinal, ordinal)
        if mode_flag:
            cols.flag_pos.append(start)
            cols.flag_val.append(mode_flag)
        cols.add_plan(n, self._plan_counter, cat_idx)

    def _append_plan_for_new(self, path: str, target_size: int, budget: int,
                             temporary: bool, cat_idx: int,
                             cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_new`: creat, write out, re-read,
        close (+unlink for TEMP)."""
        self._plan_counter += 1
        plan_id = self._plan_counter
        start = cols.total
        cols.reserve(start + 1)
        cols.kinds_buf[start] = KIND_CREAT
        cols.sizes_buf[start] = target_size
        n = 1 + self._append_write_out(target_size, cols, start + 1)
        # Spend the rest of the access budget re-reading the fresh file
        # (NEW files average 2.36 accesses per byte, TEMP 2.00 — beyond
        # the single write-out pass).
        read_budget = budget - target_size
        if read_budget > 0:
            row = start + n
            cols.reserve(row + 1)
            cols.kinds_buf[row] = KIND_LSEEK
            cols.sizes_buf[row] = 0.0
            n += 1
            n += self._append_data_cols(read_budget, target_size, 0.0,
                                        cols, start + n)
        row = start + n
        cols.reserve(row + 2)  # close row, plus the TEMP unlink row
        cols.kinds_buf[row] = KIND_CLOSE
        cols.sizes_buf[row] = 0.0
        n += 1
        ordinal = len(cols.plan_paths)
        cols.plan_paths.append(path)
        cols.path_pos += (start, start + n - 1)  # creat and close rows
        cols.path_ord += (ordinal, ordinal)
        if temporary:
            row = start + n
            cols.kinds_buf[row] = KIND_UNLINK
            cols.sizes_buf[row] = 0.0
            n += 1
            cols.path_pos.append(row)
            cols.path_ord.append(ordinal)
            cols.plan_fix_pos.append(row)
            cols.plan_fix_val.append(-1)  # unlink carries no plan id
        cols.flag_pos.append(start)
        cols.flag_val.append(_CREAT_FLAGS)
        cols.add_plan(n, plan_id, cat_idx)

    def _append_plan_for_directory(self, path: str, dir_size: int,
                                   passes: int, cat_idx: int,
                                   cols: _SessionColumns) -> None:
        """Columnar :meth:`_plan_for_directory`: stat + per-pass listdir."""
        self._plan_counter += 1
        n = 1 + passes
        start = cols.total
        end = start + n
        cols.reserve(end)
        cols.kinds_buf[start:end] = KIND_LISTDIR
        cols.kinds_buf[start] = KIND_STAT
        cols.sizes_buf[start:end] = dir_size
        ordinal = len(cols.plan_paths)
        cols.plan_paths.append(path)
        cols.path_pos.extend(range(start, start + n))
        cols.path_ord.extend([ordinal] * n)
        cols.plan_fix_pos.append(start)  # only stat carries the plan id
        cols.plan_fix_val.append(self._plan_counter)
        cols.add_plan(n, -1, cat_idx)

    def _think_col(self, n: int) -> np.ndarray:
        """``n`` think times (µs, int64) — the vectorized
        :meth:`_sample_think_us`, phase modulation included."""
        raw = self._think.take(n)
        if self.phase_model is not None:
            raw = raw * self.phase_model.step_many(self._phase.take(n))
        ok = np.isfinite(raw) & (raw >= 0.0)
        think = np.zeros(n, dtype=np.float64)
        np.rint(raw, where=ok, out=think)
        return np.minimum(think, _INT64_SATURATE).astype(np.int64)


    def _append_session_plans(self, session_id: int,
                              cols: _SessionColumns) -> None:
        """The columnar :meth:`_session_plan_specs` walk, entry-grouped.

        Consumes the ``select`` and per-category ``count:`` streams
        exactly as the scalar walk does — one fraction gate per entry,
        one count draw per fired entry, one pool ``choice`` per
        non-creating entry — but takes each fired entry's per-plan
        budget/size draws as *one block per stream* instead of one
        scalar draw per plan.  Per-stream draw order is unchanged (each
        quantity owns a named stream and plans consume it in plan
        order), so the emitted rows are byte-identical to the scalar
        walk's; only the Python overhead per plan goes away.
        """
        select_random = self._rng_select.random
        choice = self._rng_select.choice
        intern_cat = cols.categories.intern
        user_id = self.user_id
        for samplers in self._usage_samplers:
            usage = samplers.usage
            if select_random() >= usage.fraction_of_users:
                continue
            count = self._sample_count(samplers)
            if samplers.creates:
                home = self.layout.user_home(user_id)
                prefix = samplers.prefix
                temporary = samplers.temporary
                cat_idx = intern_cat(samplers.key)
                raw = samplers.file_size.take(count)
                targets = np.maximum(
                    np.where(np.isfinite(raw), np.rint(raw), 1.0), 1.0)
                ratios = _sane_ratios(samplers.access_per_byte.take(count))
                budgets = np.rint(ratios * targets).tolist()
                targets = targets.tolist()
                for k in range(count):
                    path = (
                        f"{home}/{prefix}-s{session_id:04d}-"
                        f"p{self._plan_counter:05d}-{k}"
                    )
                    self._append_plan_for_new(
                        path, int(targets[k]), int(budgets[k]), temporary,
                        cat_idx, cols,
                    )
                continue
            pool_paths, pool_sizes = self.layout.pool_arrays(
                usage.category, user_id)
            if not pool_paths:
                continue
            chosen = choice(
                len(pool_paths), size=min(count, len(pool_paths)),
                replace=False,
            ).reshape(-1)
            cat_idx = intern_cat(samplers.key)
            ratios = _sane_ratios(samplers.access_per_byte.take(len(chosen)))
            if samplers.is_dir:
                passes = np.maximum(np.rint(ratios), 1.0).tolist()
                for j, idx in enumerate(chosen.tolist()):
                    self._append_plan_for_directory(
                        pool_paths[idx], int(pool_sizes[idx]),
                        int(passes[j]), cat_idx, cols,
                    )
            else:
                sizes = pool_sizes[chosen]
                budgets = np.rint(ratios * sizes).tolist()
                sizes = sizes.tolist()
                write_fraction = samplers.write_fraction
                mode_flag = samplers.mode_flag
                for j, idx in enumerate(chosen.tolist()):
                    self._append_plan_for_existing(
                        pool_paths[idx], sizes[j], int(budgets[j]),
                        write_fraction, mode_flag, cat_idx, cols,
                    )

    def generate_user_batch(
        self, session_ids,
    ) -> "tuple[OpBatch, list[int]]":
        """All of ``session_ids`` fused into one :class:`OpBatch`.

        The fused per-user kernel: every session's plans land in one
        shared :class:`_SessionColumns`, and the whole user pays *one*
        kind/size concatenation, one ``np.repeat`` per constant column,
        one permutation gather, one think-column take, one write-mix
        take and one :meth:`StringTable.intern_many` — instead of one of
        each per session.  Returns ``(batch, bounds)`` where
        ``bounds[i]`` is the first row of the ``i``-th session
        (``len(bounds) == len(session_ids) + 1``).

        Byte-identity with the scalar path is preserved because fusion
        only *regroups* draws across sessions, never across streams:
        each named stream is still consumed session-by-session in draw
        order (slot/think/write-mix blocks are the concatenation of the
        per-session blocks), and rows of session ``i`` occupy exactly
        ``[bounds[i], bounds[i+1])`` — the interleave permutes within a
        session only.
        """
        cols = _SessionColumns(StringTable(), StringTable())
        sids = list(session_ids)
        bounds = [0]
        plan_marks = [0]
        for session_id in sids:
            self._append_session_plans(session_id, cols)
            bounds.append(cols.total)
            plan_marks.append(len(cols.lengths))

        lengths = cols.lengths
        n = cols.total
        user_types = StringTable()
        type_idx = user_types.intern(self.user_type.name)
        if n == 0:
            batch = OpBatch.empty(0, cols.paths, cols.categories, user_types)
            batch.think_us = self._think_col(0)
            return batch, bounds

        offsets = [0] * len(lengths)
        acc = 0
        for j, length in enumerate(lengths):
            offsets[j] = acc
            acc += length
        # Interleave plans exactly as generate_session does: same FIFO
        # admission to the open-file window, same per-op slot uniform.
        # Every op consumes exactly one "slot" draw, so the user's whole
        # uniform block pre-draws in one take.
        uniforms = self._slot.take(n).tolist()
        order = [0] * n
        max_open = self.user_type.max_open_files
        for s in range(len(sids)):
            _interleave(lengths, offsets, plan_marks[s], plan_marks[s + 1],
                        uniforms, order, bounds[s], max_open)

        kinds = cols.kinds_buf[:n]
        if cols.mix_count:
            # One write-mix block for the whole user: same draws, in the
            # same per-stream order, as the scalar per-op draws.
            counts = np.asarray(cols.mix_count)
            total_mix = int(counts.sum())
            mix = self._write_mix.take(total_mix)
            writes = mix < np.repeat(np.asarray(cols.mix_wf), counts)
            if writes.any():
                head = np.empty(len(counts), dtype=np.int64)
                head[0] = 0
                np.cumsum(counts[:-1], out=head[1:])
                intra = np.arange(total_mix) - np.repeat(head, counts)
                rows = (np.repeat(np.asarray(cols.mix_start), counts)
                        + intra * np.repeat(np.asarray(cols.mix_step),
                                            counts))
                kinds[rows[writes]] = KIND_WRITE
        perm = np.asarray(order, dtype=np.int64)
        reps = np.asarray(lengths)
        plan_col = np.repeat(np.asarray(cols.plan_base, dtype=np.int64), reps)
        if cols.plan_fix_pos:
            plan_col[cols.plan_fix_pos] = cols.plan_fix_val
        path_col = np.full(n, -1, dtype=np.int32)
        if cols.path_pos:
            path_ids = cols.paths.intern_many(cols.plan_paths)
            path_col[cols.path_pos] = path_ids[cols.path_ord]
        flags_col = np.zeros(n, dtype=np.int16)
        if cols.flag_pos:
            flags_col[cols.flag_pos] = cols.flag_val
        session_col = np.repeat(
            np.asarray(sids, dtype=np.int64),
            np.diff(np.asarray(bounds, dtype=np.int64)),
        )
        batch = OpBatch(
            kinds=kinds[perm],
            plan_ids=plan_col[perm],
            sizes=cols.sizes_buf[:n][perm].astype(np.int64),
            flags=flags_col[perm],
            path_idx=path_col[perm],
            category_idx=np.repeat(
                np.asarray(cols.cat_base, dtype=np.int32), reps)[perm],
            user_ids=np.full(n, self.user_id, dtype=np.int64),
            # perm permutes within sessions only, so the session column
            # needs no gather.
            session_ids=session_col,
            user_type_idx=np.full(n, type_idx, dtype=np.int32),
            start_us=np.zeros(n, dtype=np.float64),
            response_us=np.zeros(n, dtype=np.float64),
            think_us=self._think_col(n),
            paths=cols.paths,
            categories=cols.categories,
            user_types=user_types,
        )
        return batch, bounds

    def generate_session_batch(self, session_id: int) -> OpBatch:
        """The columnar :meth:`generate_session`: one login session as an
        :class:`~repro.core.opbatch.OpBatch`.

        Row ``i`` is the ``i``-th file operation; the think pause that
        follows it lands in the batch's ``think_us`` column (the exact
        stream :meth:`generate_session` yields, re-interleavable via
        :meth:`~repro.core.opbatch.OpBatch.iter_session_ops`).  Timing
        columns are zero; an execution backend fills them.  (One-session
        form of :meth:`generate_user_batch`.)
        """
        batch, _ = self.generate_user_batch((session_id,))
        return batch


def _sane_ratios(ratios: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`SessionGenerator._sample_ratio` clamp:
    non-finite or negative accesses-per-byte draws become 0.0."""
    bad = ~(np.isfinite(ratios) & (ratios >= 0.0))
    if bad.any():
        ratios = np.where(bad, 0.0, ratios)
    return ratios


def _interleave(lengths: list, offsets: list, p0: int, p1: int,
                uniforms: list, order: list, i: int, max_open: int) -> None:
    """Fill ``order[i:]`` with one session's plan-interleave permutation.

    The same walk as :meth:`SessionGenerator.generate_session`'s loop —
    FIFO admission of plans ``p0..p1`` into the open-file window, one
    slot uniform per op, ``floor(u * width)`` with the u ≈ 1 clamp —
    over pre-drawn uniforms.  Structured so admission is only re-checked
    after an exhaustion event (the window can only open then), and the
    common single-plan tail is emitted as one slice assignment: with
    ``width == 1`` every remaining draw selects slot 0, so the rows are
    simply sequential (the uniforms were already drawn; skipping their
    *reads* consumes nothing).
    """
    cursor: list[int] = []     # per active slot: next global row
    remaining: list[int] = []  # per active slot: ops left
    admit_cursor = cursor.append
    admit_remaining = remaining.append
    width = 0
    nxt = p0
    while True:
        while nxt < p1 and width < max_open:
            admit_cursor(offsets[nxt])
            admit_remaining(lengths[nxt])
            nxt += 1
            width += 1
        if width == 0:
            return
        if width == 1 and nxt >= p1:
            row = cursor[0]
            left = remaining[0]
            order[i:i + left] = range(row, row + left)
            return
        while True:
            s = int(uniforms[i] * width)
            if s == width:  # float rounding of u ≈ 1 (see _seek_offset)
                s = width - 1
            row = cursor[s]
            order[i] = row
            i += 1
            left = remaining[s] - 1
            if left:
                cursor[s] = row + 1
                remaining[s] = left
            else:
                del cursor[s]
                del remaining[s]
                width -= 1
                break
