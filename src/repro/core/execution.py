"""Execution backends — the *how long* of the workload.

Stage three of the generation pipeline (plan → synthesize → execute):
an :class:`ExecutionBackend` replays the pure operation streams produced
by :class:`~repro.core.synthesis.SessionGenerator` and attaches timing.
Three implementations ship:

* :class:`DesBackend` — the discrete-event simulation path.  Every call
  runs through a simulated file-system client (NFS, local-disk or
  AFS-like), users contend for shared server/network/disk resources, and
  response times come off the engine clock.  Full timing fidelity, one
  Python-generator resumption chain per call.
* :class:`FastReplayBackend` — the scalar throughput path.  Each op is
  charged the *analytic mean* service time of the same calibrated
  timing parameters (:class:`AnalyticServiceModel`), with no queueing
  and no engine.  Several times the ops/s (the floor ``benchmarks/
  bench_backends.py`` enforces is 5x); identical op stream.
* :class:`ColumnarReplayBackend` — the array-native throughput path.
  Whole sessions arrive as :class:`~repro.core.opbatch.OpBatch`
  columns; service times, start clocks and the time-limit cutoff are
  single array expressions, and batches flow to batch-aware sinks via
  ``record_batch``.  Several times the scalar fast path again (floors:
  4x fast, 20x the DES); identical records, timing included.

All record through the :class:`~repro.core.oplog.OpSink` protocol.
Because synthesis is a pure function of ``(root seed, user id)``, the
backends emit **byte-identical** op sequences (op kind, path, size) —
only ``start_us``/``response_us`` differ, and the two engine-free paths
agree even on those, bit for bit.  ``benchmarks/bench_backends.py``
asserts the identity and records the measured speedups in
``BENCH_backends.json``.

What the fast path gives up: queueing.  Users do not contend, so
response times carry no load dependence — Figure 5.6-style saturation
experiments need the DES.  Use ``fast`` when the *content* of the
workload is the product (trace generation, calibration loops, fleet
scale-out) and ``nfs``/``local``/``afs`` when timing is.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..nfs import NfsTiming, SUN_NFS_TIMING
from .arrivals import SessionSchedule
from .opbatch import (
    DATA_KIND_CODES,
    KIND_CREAT,
    KIND_LSEEK,
    KIND_OPEN,
    KIND_THINK,
    OpBatch,
    REFERENCE_KIND_CODES,
)
from .oplog import (
    OpRecord,
    OpSink,
    SessionAccounting,
    SessionRecord,
    apply_op_effects,
)
from .synthesis import SessionGenerator

__all__ = [
    "UserSessions",
    "ExecutionBackend",
    "DesBackend",
    "AnalyticServiceModel",
    "FastReplayBackend",
    "ColumnarReplayBackend",
]


@dataclass(frozen=True)
class UserSessions:
    """One user's work order: a synthesizer plus a session count.

    ``schedule`` (from an :class:`~repro.core.arrivals.ArrivalModel`)
    gives the user a first-login offset and per-session gaps; without
    one the user starts at clock 0 and ``inter_session_us`` separates
    sessions uniformly (the pre-arrivals behaviour).
    """

    generator: SessionGenerator
    sessions: int
    inter_session_us: float = 0.0
    schedule: SessionSchedule | None = None

    @property
    def offset_us(self) -> float:
        """The user's first-login offset (0.0 without a schedule)."""
        return self.schedule.offset_us if self.schedule is not None else 0.0

    def gap_after_us(self, session_id: int) -> float:
        """The pause after ``session_id`` ends (logout→next login).

        Gaps *separate* sessions: the one after the final session is
        never applied (0.0), so a run's duration ends with work, not
        with an idle logout tail.
        """
        if session_id + 1 >= self.sessions:
            return 0.0
        if self.schedule is not None:
            return self.schedule.gap_after(session_id)
        return self.inter_session_us


# Kind-code → bool lookup tables (indexing an int8 column through these
# is considerably faster than np.isin on the hot path).
_N_KINDS = max(max(DATA_KIND_CODES), max(REFERENCE_KIND_CODES),
               KIND_THINK, KIND_LSEEK) + 1
_DATA_MASK = np.zeros(_N_KINDS, dtype=bool)
_DATA_MASK[list(DATA_KIND_CODES)] = True
_REF_MASK = np.zeros(_N_KINDS, dtype=bool)
_REF_MASK[list(REFERENCE_KIND_CODES)] = True


class ExecutionBackend(abc.ABC):
    """Replays synthesized op streams, attaching timing and recording."""

    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self,
        tasks: Iterable[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        """Run every task, record into ``log``, return the duration (µs).

        ``tasks`` may be any iterable — the engine-free backends drain
        it lazily, one user at a time, so a fleet-scale run can stream
        task construction instead of materialising every user's
        generator up front.  ``time_limit_us`` truncates the run: the DES stops the shared
        engine clock at the limit, the fast backends stop each user's
        own clock (users are independent there).  The boundary rule is
        the same everywhere: **an op starting exactly at the limit is
        excluded** (``start >= limit`` drops the op).  A session cut off
        by the limit records its executed ops but no session summary —
        an interrupted user never reaches its accounting epilogue.
        """


class DesBackend(ExecutionBackend):
    """Discrete-event execution on a simulated file-system client.

    ``engine`` and ``client`` come from
    :meth:`~repro.core.generator.WorkloadGenerator.build_simulation`; all
    users run concurrently and contend for the simulated resources.
    """

    name = "sim"

    def __init__(self, engine, client):
        self.engine = engine
        self.client = client

    def execute(
        self,
        tasks: Iterable[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        from .usim import simulated_user_process  # usim imports the sim layer

        processes = [
            self.engine.spawn(
                simulated_user_process(
                    self.engine, self.client, task, log,
                    deadline_us=time_limit_us,
                ),
                name=f"user-{task.generator.user_id}",
            )
            for task in tasks
        ]
        # Truncation, not a runaway guard: the engine stops the shared
        # clock at the limit and leaves later events unprocessed.  User
        # processes police the op-start boundary themselves (start >=
        # limit drops the op); an op still in flight at the limit never
        # completes, so it is never recorded.  Deadlocks still raise.
        self.engine.run_until_processes_finish(
            processes, limit=time_limit_us, truncate=True
        )
        return self.engine.now


class AnalyticServiceModel:
    """Mean per-call service times derived from an ``NfsTiming`` set.

    The fast backend applies the DES's calibrated timing parameters
    *analytically*: each call is charged the expected cost of its
    components under no contention —

    * every call pays the client's syscall overhead;
    * calls that reach the server (everything but ``lseek``) pay one RPC
      round trip (two network latencies plus header transmission) and
      the server's fixed per-op CPU cost;
    * data-moving calls additionally pay, per
      ``client.max_transfer_bytes`` page, one extra RPC round trip and
      per-op CPU charge, and per byte the network transmission, server
      CPU, and amortised disk-transfer cost.

    Deterministic by construction: no random state, so the fast path
    consumes exactly the same random streams as the DES path (none
    beyond synthesis).
    """

    _LOCAL_OPS = frozenset({"lseek"})
    _DATA_OPS = frozenset({"read", "write", "listdir"})

    def __init__(self, timing: NfsTiming | None = None):
        timing = timing or SUN_NFS_TIMING
        self.timing = timing
        net, disk = timing.network, timing.disk
        server, client = timing.server, timing.client
        header_bytes = net.rpc_request_bytes + net.rpc_reply_bytes
        self.syscall_us = client.syscall_overhead_us
        self.round_trip_us = (
            2.0 * net.latency_us + header_bytes / net.bandwidth_bytes_per_us
        )
        self.per_rpc_us = self.round_trip_us + server.cpu_per_op_us
        self.per_byte_us = (
            1.0 / net.bandwidth_bytes_per_us
            + server.cpu_per_byte_us
            + 1.0 / disk.transfer_bytes_per_us
        )
        self.page_bytes = max(1, client.max_transfer_bytes)

    def response_us(self, kind: str, nbytes: int = 0) -> float:
        """Expected service time of one call moving ``nbytes`` bytes."""
        if kind in self._LOCAL_OPS:
            return self.syscall_us
        cost = self.syscall_us + self.per_rpc_us
        if kind in self._DATA_OPS and nbytes > 0:
            pages = (nbytes + self.page_bytes - 1) // self.page_bytes
            cost += (pages - 1) * self.per_rpc_us + nbytes * self.per_byte_us
        return cost

    def response_us_array(self, kinds: np.ndarray,
                          sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`response_us` over kind-code/size columns.

        Bit-identical to the scalar method per element: the expression
        keeps the same operation order (base cost, then the page and
        byte terms added as one sum), so IEEE rounding matches.  Think
        rows get a zero — they are pauses, not calls.
        """
        base = self.syscall_us + self.per_rpc_us
        out = np.full(len(kinds), base, dtype=np.float64)
        out[kinds == KIND_LSEEK] = self.syscall_us
        out[kinds == KIND_THINK] = 0.0
        data = np.flatnonzero(_DATA_MASK[kinds] & (sizes > 0))
        if len(data):
            nbytes = sizes[data]
            pages = (nbytes + self.page_bytes - 1) // self.page_bytes
            out[data] = base + (
                (pages - 1) * self.per_rpc_us + nbytes * self.per_byte_us
            )
        return out


class FastReplayBackend(ExecutionBackend):
    """Analytic replay: the op stream without the discrete-event engine.

    Users run on independent virtual clocks (no cross-user queueing);
    each op is charged its :class:`AnalyticServiceModel` mean service
    time and streamed straight to the :class:`~repro.core.oplog.OpSink`.
    The reported duration is the slowest user's clock.
    """

    name = "fast"

    def __init__(self, timing: NfsTiming | None = None,
                 model: AnalyticServiceModel | None = None):
        self.model = model or AnalyticServiceModel(timing)

    def execute(
        self,
        tasks: Iterable[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        duration = 0.0
        for task in tasks:
            duration = max(duration, self._run_user(task, log, time_limit_us))
        return duration

    def _run_user(self, task: UserSessions, log: OpSink,
                  limit: float | None) -> float:
        generator = task.generator
        user_id = generator.user_id
        type_name = generator.user_type.name
        response_us = self.model.response_us
        record_op = log.record_op
        clock = task.offset_us
        for session_id in range(task.sessions):
            if limit is not None and clock >= limit:
                break
            accounting = SessionAccounting(user_id, type_name, session_id,
                                           clock)
            path_by_plan: dict[int, str] = {}
            truncated = False
            for op in generator.generate_session(session_id):
                kind = op.kind
                if kind == "think":
                    clock += op.size
                    continue
                if limit is not None and clock >= limit:
                    truncated = True
                    break
                if kind in ("open", "creat"):
                    path_by_plan[op.plan_id] = op.path
                # No I/O happens here, so the recorded size is the
                # synthesized one — the same rules as the other backends,
                # via the shared helper.
                moved = apply_op_effects(op, accounting)
                service = response_us(kind, op.size)
                record_op(
                    OpRecord(
                        user_id=user_id,
                        user_type=type_name,
                        session_id=session_id,
                        op=kind,
                        path=op.path or path_by_plan.get(op.plan_id, ""),
                        category_key=op.category_key or "",
                        size=moved,
                        start_us=clock,
                        response_us=service,
                    )
                )
                clock += service
            if limit is not None and not truncated and clock > limit:
                # A trailing think pushed the clock past the limit with no
                # further op to notice: the session did not complete within
                # the limit either.
                truncated = True
            if truncated:
                # Matches the DES cutoff: the interrupted session's ops
                # are recorded but its summary is not.
                clock = limit if limit is not None else clock
                break
            log.record_session(accounting.finish(clock))
            gap = task.gap_after_us(session_id)
            if gap > 0:
                clock += gap
        return clock if limit is None else min(clock, limit)


class ColumnarReplayBackend(FastReplayBackend):
    """Array-native fast replay: whole sessions as one :class:`OpBatch`.

    Same analytic timing model and same op stream as
    :class:`FastReplayBackend` — the scalar per-op loop (dataclass per
    op, three Python calls per record) is replaced by array expressions
    over one batch per session:

    * service times come from
      :meth:`AnalyticServiceModel.response_us_array` in one shot;
    * ``start_us`` is a cumulative sum over the interleaved
      service/think contribution column, seeded with the user's clock so
      float rounding matches the scalar running sum bit for bit;
    * a ``time_limit_us`` cutoff is one ``searchsorted`` over the
      (non-decreasing) op start column;
    * the executed slice goes to the sink via ``record_batch`` when the
      sink has one, else through the :meth:`OpBatch.to_records` bridge.

    The golden tests pin byte-identical op records, session summaries
    and tallies against both the scalar fast path and the DES.
    """

    name = "fast-columnar"

    def _run_user(self, task: UserSessions, log: OpSink,
                  limit: float | None) -> float:
        generator = task.generator
        user_id = generator.user_id
        type_name = generator.user_type.name
        record_batch = getattr(log, "record_batch", None)
        offset = task.offset_us
        if limit is not None and offset >= limit:
            return min(offset, limit)
        n_sessions = task.sessions
        # One fused batch for the user's whole lifetime: service times,
        # the clock cumsum, the limit cutoff, path resolution and the
        # recorded-size rule all run once per user instead of once per
        # session.  bounds[s] is the first row of session s.
        batch, bounds = generator.generate_user_batch(range(n_sessions))
        n = len(batch)
        service = self.model.response_us_array(batch.kinds, batch.sizes)
        ends = np.asarray(bounds[1:], dtype=np.int64)
        sess_axis = np.arange(n_sessions, dtype=np.int64)
        # Interleave the clock contributions — service of op i, then its
        # think pause, with each session's logout gap spliced in after
        # its last think — and cumsum once, seeded with the user's
        # offset: np.cumsum accumulates left to right, so every op's
        # start (and every inter-session gap hop) reproduces the scalar
        # running float sum bit for bit.  Adding the final session's
        # 0.0 gap is exact (x + 0.0 == x for the non-negative clocks).
        contrib = np.zeros(2 * n + n_sessions + 1, dtype=np.float64)
        contrib[0] = offset
        sess_of_op = batch.session_ids  # == repeat(arange, row counts)
        op_slots = 2 * np.arange(n, dtype=np.int64) + sess_of_op
        contrib[op_slots + 1] = service
        contrib[op_slots + 2] = batch.think_us
        contrib[2 * ends + sess_axis + 1] = [
            task.gap_after_us(s) for s in range(n_sessions)
        ]
        cumulative = np.cumsum(contrib)
        op_starts = cumulative[op_slots]
        session_starts = cumulative[
            2 * np.asarray(bounds[:-1], dtype=np.int64) + sess_axis]
        session_ends = cumulative[2 * ends + sess_axis]

        cut = n
        if limit is not None:
            cut = int(np.searchsorted(op_starts, limit, side="left"))

        rec = batch.select(slice(0, cut))
        rec.path_idx = self._resolved_paths(rec)
        rec.start_us = op_starts[:cut]
        rec.response_us = service[:cut]
        # The recorded size column follows apply_op_effects: data movers
        # keep their byte count, everything else records 0.
        rec.sizes = np.where(_DATA_MASK[rec.kinds], rec.sizes, 0)

        # Emit per session — the same sink event sequence (one batch and
        # one summary per executed session) the per-session path
        # produced, as zero-copy slices of the user batch.
        starts_list = session_starts.tolist()
        ends_list = session_ends.tolist()
        truncated = False
        for s in range(n_sessions):
            if limit is not None and starts_list[s] >= limit:
                # The scalar loop breaks before entering this session;
                # no rows recorded (every one starts at or past the
                # limit), no summary.
                break
            lo, hi = bounds[s], bounds[s + 1]
            executed = hi if hi <= cut else cut
            sub = rec.select(slice(lo, executed))
            if record_batch is not None:
                record_batch(sub)
            else:
                record_op = log.record_op
                for record in sub.to_records():
                    record_op(record)
            if executed < hi or (limit is not None
                                 and ends_list[s] > limit):
                # Ops dropped, or a trailing think pushed the clock past
                # the limit: the session did not complete — its executed
                # ops are recorded but its summary is not (the DES
                # cutoff rule), and no later session starts.
                truncated = True
                break
            log.record_session(
                self._session_summary(batch.select(slice(lo, hi)), user_id,
                                      type_name, s, starts_list[s],
                                      ends_list[s])
            )
        end_clock = limit if truncated else float(cumulative[-1])
        return end_clock if limit is None else min(end_clock, limit)

    @staticmethod
    def _resolved_paths(rec: OpBatch) -> np.ndarray:
        """Fill pathless rows from their plan's open/creat row.

        The columnar equivalent of the scalar executors' ``path_by_plan``
        dict: a dense plan-id → path-index table built from the executed
        open/creat rows (every data op's open precedes it in the batch,
        so the table always covers the lookups).
        """
        path_idx = rec.path_idx
        need = np.flatnonzero((path_idx < 0) & (rec.plan_ids >= 0))
        if not len(need):
            return path_idx
        opens = np.flatnonzero(
            (rec.kinds == KIND_OPEN) | (rec.kinds == KIND_CREAT))
        if not len(opens):
            return path_idx
        open_plans = rec.plan_ids[opens]
        # Plan ids grow monotonically across a user's whole lifetime, so
        # the table is offset to this batch's own id range — its size is
        # O(plans in this session), not O(plans ever created).
        low = int(open_plans.min())
        table = np.full(int(open_plans.max()) - low + 1, -1, dtype=np.int32)
        table[open_plans - low] = path_idx[opens]
        lookup = rec.plan_ids[need] - low
        covered = (lookup >= 0) & (lookup < len(table))
        resolved = path_idx.copy()  # path_idx may be a view of the batch
        resolved[need[covered]] = table[lookup[covered]]
        return resolved

    @staticmethod
    def _session_summary(batch: OpBatch, user_id: int, type_name: str,
                         session_id: int, start_us: float,
                         end_us: float) -> SessionRecord:
        """The session's :class:`SessionRecord`, computed columnar-ly.

        Mirrors :class:`~repro.core.oplog.SessionAccounting` exactly:
        open/creat/stat rows reference a file (keeping the per-path
        maximum size), read/write/listdir rows move bytes, categories
        come from the referencing rows.
        """
        kinds = batch.kinds
        refs = np.flatnonzero(_REF_MASK[kinds])
        per_path = np.full(len(batch.paths), -1, dtype=np.int64)
        if len(refs):
            np.maximum.at(per_path, batch.path_idx[refs], batch.sizes[refs])
        seen = per_path >= 0
        data_mask = _DATA_MASK[kinds]
        category_names = batch.categories.values()
        categories = {
            category_names[i]
            for i in np.unique(batch.category_idx[refs])
            if i >= 0 and category_names[i]
        }
        return SessionRecord(
            user_id=user_id,
            user_type=type_name,
            session_id=session_id,
            start_us=start_us,
            end_us=end_us,
            files_referenced=int(seen.sum()),
            bytes_accessed=int(batch.sizes[data_mask].sum()),
            file_bytes_referenced=int(per_path[seen].sum()),
            categories=tuple(sorted(categories)),
        )
