"""Execution backends — the *how long* of the workload.

Stage three of the generation pipeline (plan → synthesize → execute):
an :class:`ExecutionBackend` replays the pure operation streams produced
by :class:`~repro.core.synthesis.SessionGenerator` and attaches timing.
Two implementations ship:

* :class:`DesBackend` — the discrete-event simulation path.  Every call
  runs through a simulated file-system client (NFS, local-disk or
  AFS-like), users contend for shared server/network/disk resources, and
  response times come off the engine clock.  Full timing fidelity, one
  Python-generator resumption chain per call.
* :class:`FastReplayBackend` — the throughput path.  Each op is charged
  the *analytic mean* service time of the same calibrated timing
  parameters (:class:`AnalyticServiceModel`), with no queueing and no
  engine.  Several times the ops/s (the floor ``benchmarks/
  bench_backends.py`` enforces is 5x); identical op stream.

Both record through the :class:`~repro.core.oplog.OpSink` protocol.
Because synthesis is a pure function of ``(root seed, user id)``, the
two backends emit **byte-identical** op sequences (op kind, path, size)
— only ``start_us``/``response_us`` differ.  ``benchmarks/
bench_backends.py`` asserts the identity and records the measured
speedup in ``BENCH_backends.json``.

What the fast path gives up: queueing.  Users do not contend, so
response times carry no load dependence — Figure 5.6-style saturation
experiments need the DES.  Use ``fast`` when the *content* of the
workload is the product (trace generation, calibration loops, fleet
scale-out) and ``nfs``/``local``/``afs`` when timing is.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from ..nfs import NfsTiming, SUN_NFS_TIMING
from .oplog import OpRecord, OpSink, SessionAccounting, apply_op_effects
from .synthesis import SessionGenerator

__all__ = [
    "UserSessions",
    "ExecutionBackend",
    "DesBackend",
    "AnalyticServiceModel",
    "FastReplayBackend",
]


@dataclass(frozen=True)
class UserSessions:
    """One user's work order: a synthesizer plus a session count."""

    generator: SessionGenerator
    sessions: int
    inter_session_us: float = 0.0


class ExecutionBackend(abc.ABC):
    """Replays synthesized op streams, attaching timing and recording."""

    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self,
        tasks: Sequence[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        """Run every task, record into ``log``, return the duration (µs).

        ``time_limit_us`` truncates the run: the DES stops the shared
        engine clock at the limit, the fast backend stops each user's
        own clock (users are independent there).  A session cut off by
        the limit records its executed ops but no session summary —
        matching the DES, where an interrupted process never reaches its
        accounting epilogue.
        """


class DesBackend(ExecutionBackend):
    """Discrete-event execution on a simulated file-system client.

    ``engine`` and ``client`` come from
    :meth:`~repro.core.generator.WorkloadGenerator.build_simulation`; all
    users run concurrently and contend for the simulated resources.
    """

    name = "sim"

    def __init__(self, engine, client):
        self.engine = engine
        self.client = client

    def execute(
        self,
        tasks: Sequence[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        from .usim import simulated_user_process  # usim imports the sim layer

        processes = [
            self.engine.spawn(
                simulated_user_process(
                    self.engine, self.client, task.generator, task.sessions,
                    log, inter_session_us=task.inter_session_us,
                ),
                name=f"user-{task.generator.user_id}",
            )
            for task in tasks
        ]
        self.engine.run_until_processes_finish(processes, limit=time_limit_us)
        return self.engine.now


class AnalyticServiceModel:
    """Mean per-call service times derived from an ``NfsTiming`` set.

    The fast backend applies the DES's calibrated timing parameters
    *analytically*: each call is charged the expected cost of its
    components under no contention —

    * every call pays the client's syscall overhead;
    * calls that reach the server (everything but ``lseek``) pay one RPC
      round trip (two network latencies plus header transmission) and
      the server's fixed per-op CPU cost;
    * data-moving calls additionally pay, per
      ``client.max_transfer_bytes`` page, one extra RPC round trip and
      per-op CPU charge, and per byte the network transmission, server
      CPU, and amortised disk-transfer cost.

    Deterministic by construction: no random state, so the fast path
    consumes exactly the same random streams as the DES path (none
    beyond synthesis).
    """

    _LOCAL_OPS = frozenset({"lseek"})
    _DATA_OPS = frozenset({"read", "write", "listdir"})

    def __init__(self, timing: NfsTiming | None = None):
        timing = timing or SUN_NFS_TIMING
        self.timing = timing
        net, disk = timing.network, timing.disk
        server, client = timing.server, timing.client
        header_bytes = net.rpc_request_bytes + net.rpc_reply_bytes
        self.syscall_us = client.syscall_overhead_us
        self.round_trip_us = (
            2.0 * net.latency_us + header_bytes / net.bandwidth_bytes_per_us
        )
        self.per_rpc_us = self.round_trip_us + server.cpu_per_op_us
        self.per_byte_us = (
            1.0 / net.bandwidth_bytes_per_us
            + server.cpu_per_byte_us
            + 1.0 / disk.transfer_bytes_per_us
        )
        self.page_bytes = max(1, client.max_transfer_bytes)

    def response_us(self, kind: str, nbytes: int = 0) -> float:
        """Expected service time of one call moving ``nbytes`` bytes."""
        if kind in self._LOCAL_OPS:
            return self.syscall_us
        cost = self.syscall_us + self.per_rpc_us
        if kind in self._DATA_OPS and nbytes > 0:
            pages = (nbytes + self.page_bytes - 1) // self.page_bytes
            cost += (pages - 1) * self.per_rpc_us + nbytes * self.per_byte_us
        return cost


class FastReplayBackend(ExecutionBackend):
    """Analytic replay: the op stream without the discrete-event engine.

    Users run on independent virtual clocks (no cross-user queueing);
    each op is charged its :class:`AnalyticServiceModel` mean service
    time and streamed straight to the :class:`~repro.core.oplog.OpSink`.
    The reported duration is the slowest user's clock.
    """

    name = "fast"

    def __init__(self, timing: NfsTiming | None = None,
                 model: AnalyticServiceModel | None = None):
        self.model = model or AnalyticServiceModel(timing)

    def execute(
        self,
        tasks: Sequence[UserSessions],
        log: OpSink,
        time_limit_us: float | None = None,
    ) -> float:
        duration = 0.0
        for task in tasks:
            duration = max(duration, self._run_user(task, log, time_limit_us))
        return duration

    def _run_user(self, task: UserSessions, log: OpSink,
                  limit: float | None) -> float:
        generator = task.generator
        user_id = generator.user_id
        type_name = generator.user_type.name
        response_us = self.model.response_us
        record_op = log.record_op
        clock = 0.0
        for session_id in range(task.sessions):
            if limit is not None and clock >= limit:
                break
            accounting = SessionAccounting(user_id, type_name, session_id,
                                           clock)
            path_by_plan: dict[int, str] = {}
            truncated = False
            for op in generator.generate_session(session_id):
                kind = op.kind
                if kind == "think":
                    clock += op.size
                    continue
                if limit is not None and clock >= limit:
                    truncated = True
                    break
                if kind in ("open", "creat"):
                    path_by_plan[op.plan_id] = op.path
                # No I/O happens here, so the recorded size is the
                # synthesized one — the same rules as the other backends,
                # via the shared helper.
                moved = apply_op_effects(op, accounting)
                service = response_us(kind, op.size)
                record_op(
                    OpRecord(
                        user_id=user_id,
                        user_type=type_name,
                        session_id=session_id,
                        op=kind,
                        path=op.path or path_by_plan.get(op.plan_id, ""),
                        category_key=op.category_key or "",
                        size=moved,
                        start_us=clock,
                        response_us=service,
                    )
                )
                clock += service
            if limit is not None and not truncated and clock > limit:
                # A trailing think pushed the clock past the limit with no
                # further op to notice: the session did not complete within
                # the limit either.
                truncated = True
            if truncated:
                # Matches the DES cutoff: the interrupted session's ops
                # are recorded but its summary is not.
                clock = limit if limit is not None else clock
                break
            log.record_session(accounting.finish(clock))
            if task.inter_session_us > 0:
                clock += task.inter_session_us
        return clock if limit is None else min(clock, limit)
