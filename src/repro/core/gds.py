"""The Distribution Specifier — the thesis's GDS without the X11 dependency.

Section 4.1.1: the GDS "allows users to input, fit and modify
distributions", supports phase-type exponential and multi-stage gamma
families or direct PDF/CDF tables, and "creates CDF tables for the FSC and
the USIM" using Simpson integration.

:class:`DistributionSpecifier` is that component: a named registry of
distributions with fitting, tabulation into
:class:`~repro.distributions.CdfTable` objects, terminal rendering, and
the section 4.2 memory-footprint report (#user types × #file types ×
samples per table is exactly the product the thesis worries about).
"""

from __future__ import annotations

from typing import Sequence

from ..distributions import (
    CdfTable,
    Distribution,
    DistributionError,
    FitResult,
    TabulatedCdf,
    TabulatedPdf,
    fit_best,
    fit_multi_stage_gamma,
    fit_phase_type_exponential,
)
from .plotting import render_pdf

__all__ = ["DistributionSpecifier"]


class DistributionSpecifier:
    """Named distribution registry + CDF-table factory (the GDS)."""

    def __init__(self, table_points: int = 257, coverage: float = 0.999):
        if table_points < 3:
            raise DistributionError("table_points must be >= 3")
        if not (0.0 < coverage < 1.0):
            raise DistributionError("coverage must lie in (0, 1)")
        self.table_points = table_points
        self.coverage = coverage
        self._distributions: dict[str, Distribution] = {}
        self._tables: dict[str, CdfTable] = {}

    # -- specification ---------------------------------------------------------

    def specify(self, name: str, dist: Distribution) -> Distribution:
        """Register a parametric distribution under ``name``."""
        if not name:
            raise DistributionError("distribution name must be non-empty")
        self._distributions[name] = dist
        self._tables.pop(name, None)  # stale table, if any
        return dist

    def specify_pdf_values(
        self, name: str, xs: Sequence[float], densities: Sequence[float]
    ) -> Distribution:
        """Register a distribution from raw PDF values (GDS direct input)."""
        return self.specify(name, TabulatedPdf(xs, densities))

    def specify_cdf_values(
        self, name: str, xs: Sequence[float], cdf_values: Sequence[float]
    ) -> Distribution:
        """Register a distribution from raw CDF values (GDS direct input)."""
        return self.specify(name, TabulatedCdf(xs, cdf_values))

    def fit(
        self,
        name: str,
        samples: Sequence[float],
        family: str = "auto",
        n_phases: int = 2,
    ) -> FitResult:
        """Fit ``samples`` and register the result under ``name``.

        ``family`` is ``"exponential"`` (phase-type), ``"gamma"``
        (multi-stage) or ``"auto"`` (best KS over both, 1..n_phases).
        """
        if family == "exponential":
            result = fit_phase_type_exponential(samples, n_phases=n_phases)
        elif family == "gamma":
            result = fit_multi_stage_gamma(samples, n_stages=n_phases)
        elif family == "auto":
            result = fit_best(samples, max_phases=n_phases)
        else:
            raise DistributionError(
                f"unknown family {family!r}; use exponential/gamma/auto"
            )
        self.specify(name, result.distribution)
        return result

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> Distribution:
        """The registered distribution for ``name``."""
        try:
            return self._distributions[name]
        except KeyError:
            raise DistributionError(f"no distribution named {name!r}") from None

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._distributions)

    def __contains__(self, name: str) -> bool:
        return name in self._distributions

    def __len__(self) -> int:
        return len(self._distributions)

    # -- CDF tables (the GDS output consumed by FSC and USIM) ------------------

    def table(self, name: str) -> CdfTable:
        """The CDF table for ``name`` (built lazily, cached)."""
        if name not in self._tables:
            self._tables[name] = CdfTable.from_distribution(
                self.get(name),
                n_points=self.table_points,
                coverage=self.coverage,
            )
        return self._tables[name]

    def tables(self) -> dict[str, CdfTable]:
        """CDF tables for every registered distribution."""
        return {name: self.table(name) for name in self._distributions}

    def memory_report(self) -> dict[str, int]:
        """Bytes per table plus a total — the section 4.2 concern.

        The thesis notes the footprint is the product of user types, file
        types and samples per distribution "and can quickly become
        prohibitively large"; this report makes the cost observable.
        """
        report = {name: self.table(name).memory_bytes for name in self.names()}
        report["TOTAL"] = sum(report.values())
        return report

    # -- display -----------------------------------------------------------------

    def render(self, name: str, height: int = 10, n_points: int = 72) -> str:
        """ASCII plot of a registered density (the GDS display surface)."""
        return render_pdf(
            self.get(name), n_points=n_points, height=height,
            title=f"{name}: {self.get(name).describe()}",
        )
