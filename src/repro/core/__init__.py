"""The user-oriented synthetic workload generator (the paper's contribution).

Exports the workload model (:mod:`~repro.core.spec`), the paper's measured
tables (:mod:`~repro.core.datasets`), the three components — GDS, FSC,
USIM — plus the usage log, the analyzer, and the Figure 4.1 facade.
"""

from .analyzer import CategoryCharacterization, SessionMeasures, UsageAnalyzer
from .characterize import CategorySamples, characterize_log, extract_samples
from .datasets import (
    DEFAULT_ACCESS_SIZE_MEAN,
    DEFAULT_THINK_TIME_MEAN,
    TABLE_5_1,
    TABLE_5_2,
    TABLE_5_4_THINK_TIME_US,
    Table51Row,
    Table52Row,
    paper_file_categories,
    paper_usage_specs,
    paper_user_type,
    paper_workload_spec,
)
from .execution import (
    AnalyticServiceModel,
    ColumnarReplayBackend,
    DesBackend,
    ExecutionBackend,
    FastReplayBackend,
    UserSessions,
)
from .fsc import CreatedFile, FileSystemCreator, FileSystemLayout
from .gds import DistributionSpecifier
from .generator import (
    FAST_BACKENDS,
    RUN_BACKENDS,
    RunResult,
    SIM_BACKENDS,
    SimulationHandle,
    TableSampler,
    WorkloadGenerator,
)
from .opbatch import OP_KIND_CODES, OP_KIND_NAMES, OpBatch, StringTable
from .oplog import OpRecord, OpSink, SessionAccounting, SessionRecord, UsageLog
from .plotting import render_histogram, render_pdf, render_series, sparkline
from .specjson import (
    dump_spec,
    dumps_spec,
    load_spec,
    loads_spec,
    spec_from_jsonable,
    spec_to_jsonable,
)
from .spec import (
    FileCategory,
    FileCategorySpec,
    FileType,
    Owner,
    SpecError,
    UsageSpec,
    UserTypeSpec,
    UseType,
    WorkloadSpec,
    partition_user_ids,
)
from .synthesis import PhaseModel, SessionGenerator, SessionOp
from .usim import RealRunner, simulated_user_process

__all__ = [
    "CategoryCharacterization",
    "CategorySamples",
    "characterize_log",
    "extract_samples",
    "SessionMeasures",
    "UsageAnalyzer",
    "DEFAULT_ACCESS_SIZE_MEAN",
    "DEFAULT_THINK_TIME_MEAN",
    "TABLE_5_1",
    "TABLE_5_2",
    "TABLE_5_4_THINK_TIME_US",
    "Table51Row",
    "Table52Row",
    "paper_file_categories",
    "paper_usage_specs",
    "paper_user_type",
    "paper_workload_spec",
    "CreatedFile",
    "FileSystemCreator",
    "FileSystemLayout",
    "DistributionSpecifier",
    "AnalyticServiceModel",
    "ColumnarReplayBackend",
    "DesBackend",
    "ExecutionBackend",
    "FastReplayBackend",
    "UserSessions",
    "FAST_BACKENDS",
    "RUN_BACKENDS",
    "SIM_BACKENDS",
    "OP_KIND_CODES",
    "OP_KIND_NAMES",
    "OpBatch",
    "StringTable",
    "RunResult",
    "SimulationHandle",
    "TableSampler",
    "WorkloadGenerator",
    "OpRecord",
    "OpSink",
    "SessionAccounting",
    "SessionRecord",
    "UsageLog",
    "render_histogram",
    "render_pdf",
    "render_series",
    "sparkline",
    "dump_spec",
    "dumps_spec",
    "load_spec",
    "loads_spec",
    "spec_from_jsonable",
    "spec_to_jsonable",
    "FileCategory",
    "FileCategorySpec",
    "FileType",
    "Owner",
    "SpecError",
    "UsageSpec",
    "UserTypeSpec",
    "UseType",
    "WorkloadSpec",
    "partition_user_ids",
    "PhaseModel",
    "RealRunner",
    "SessionGenerator",
    "SessionOp",
    "simulated_user_process",
]
