"""ASCII rendering of densities and histograms.

The thesis's GDS displayed distributions through X11; "if the X11 window
system is not supported, the GDS can still be used to specify
distributions, but no graphical display will be available"
(section 4.1.1).  We take the terminal-native route: compact Unicode
block-character plots good enough to eyeball a fitted density or a
smoothed histogram, with no display dependency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..distributions import Distribution

__all__ = ["render_series", "render_pdf", "render_histogram", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character plot of ``values`` (scaled to max)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    top = float(arr.max())
    if top <= 0:
        return _BLOCKS[0] * arr.size
    levels = np.clip((arr / top) * (len(_BLOCKS) - 1), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(level))] for level in levels)


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-line ASCII plot of ``ys`` against ``xs``.

    Rows are printed top-down with a simple axis; the x-range is annotated
    underneath.  Intended for quick terminal inspection, not publication.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0 or xs.size != ys.size:
        raise ValueError("xs and ys must be equal-length and non-empty")
    if height < 2:
        raise ValueError("height must be >= 2")
    top = float(ys.max())
    lines: list[str] = []
    if title:
        lines.append(title)
    if top <= 0:
        lines.append("(all-zero series)")
        return "\n".join(lines)
    # Column per sample, row per level.
    levels = np.clip((ys / top) * height, 0.0, height)
    for row in range(height, 0, -1):
        cells = []
        for level in levels:
            if level >= row:
                cells.append("█")
            elif level > row - 1:
                cells.append(_BLOCKS[1 + int((level - (row - 1)) * 7)])
            else:
                cells.append(" ")
        prefix = f"{top * row / height:>10.4g} |" if row in (height, 1) else "           |"
        lines.append(prefix + "".join(cells))
    lines.append("           +" + "-" * xs.size)
    lines.append(
        f"            x: [{xs[0]:.6g} .. {xs[-1]:.6g}]"
        + (f"  ({y_label})" if y_label else "")
    )
    return "\n".join(lines)


def render_pdf(
    dist: Distribution,
    n_points: int = 72,
    height: int = 10,
    title: str | None = None,
    coverage: float = 0.995,
) -> str:
    """Render a distribution's density the way the GDS displayed fits."""
    lo, hi = dist.quantile_range(coverage)
    if hi <= lo:
        hi = lo + 1.0
    xs = np.linspace(lo, hi, n_points)
    ys = np.asarray(dist.pdf(xs), dtype=float)
    label = title if title is not None else dist.describe()
    return render_series(xs, ys, height=height, title=label, y_label="pdf")


def render_histogram(
    centers: Sequence[float],
    counts: Sequence[float],
    height: int = 8,
    title: str = "",
) -> str:
    """Render histogram counts (Figures 5.3–5.5 style)."""
    return render_series(centers, counts, height=height, title=title,
                         y_label="count")
