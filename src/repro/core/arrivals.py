"""Temporal load model: session arrivals, diurnal profiles, user churn.

Everything before this module answers *what* a virtual user does and
*how long* each call takes; nothing answered *when* users show up.  Real
populations do not start at clock 0 in lockstep — users log in spread
over the day, work in sessions, log out, and come back later, so the
offered load varies with time.  This module supplies that missing axis:

* :class:`ArrivalModel` — per-user *first-login offset* and
  *inter-session gap* distributions.  All draws come from two new named
  streams in the user's existing stream family
  (``fork(f"user-{u}").get("first-login"|"session-gap")``), so a user's
  arrival schedule is a pure function of ``(root seed, user id)`` —
  seed-deterministic, shard-count-invariant, and independent of which
  execution backend replays it.  Adding the streams perturbs nothing:
  synthesis streams are named and independent, so the op stream with
  arrivals enabled is byte-identical to the op stream without.
* :class:`LoadProfile` — a piecewise-constant intensity curve over a
  period (a day, by default).  With a profile attached, first logins
  are drawn by **inverse-CDF time warping**: one uniform variate maps
  through the inverse of the normalised cumulative intensity, which
  thins arrivals where the curve is low and concentrates them where it
  is high.  Named profiles (``office-hours``, ``nightly``, ``evening``,
  ``uniform``) cover the common diurnal shapes; scenarios may attach
  their own.
* :class:`SessionSchedule` — the resolved plain-data timeline one user
  follows: the login offset plus the logout→next-login gap after each
  session (the *churn*: a user leaves and returns rather than running
  sessions back to back).  Schedules are computed once, up front, and
  handed to every backend, so the DES (which delays each user process
  by its offset), the scalar fast replay (which seeds the user's clock
  from it) and the columnar replay (which folds it into its cumsum)
  time sessions off the *same* floats.

This is the LWS-style explicit inter-session timing (arXiv:2301.08851)
grafted onto the thesis pipeline, with PBench-style time-varying
offered load (arXiv:2506.16379) expressible as a profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable

import numpy as np

from ..distributions import (
    Distribution,
    RandomStreams,
    ShiftedExponential,
    Uniform,
    from_jsonable,
    to_jsonable,
)

__all__ = [
    "HOUR_US",
    "DAY_US",
    "ArrivalError",
    "LoadProfile",
    "SessionSchedule",
    "ArrivalModel",
    "DEFAULT_ARRIVALS",
    "get_profile",
    "profile_names",
    "register_profile",
    "arrival_model_to_jsonable",
    "arrival_model_from_jsonable",
]

HOUR_US = 3_600e6
"""One hour in simulated microseconds."""

DAY_US = 24 * HOUR_US
"""One day in simulated microseconds (the default profile period)."""


class ArrivalError(ValueError):
    """Raised for invalid load profiles or arrival models."""


class LoadProfile:
    """A piecewise-constant arrival-intensity curve over one period.

    ``edges_us`` are the segment boundaries (increasing, starting at 0);
    ``weights`` the relative intensity on each segment.  Only the
    *shape* matters: the curve is normalised into a probability density
    over ``[0, period_us)`` and sampled by inverse transform
    (:meth:`warp`), so doubling every weight changes nothing while
    doubling one segment's weight doubles its share of arrivals.
    """

    __slots__ = ("name", "edges_us", "weights", "_cum")

    def __init__(self, edges_us: Iterable[float], weights: Iterable[float],
                 name: str = ""):
        edges = np.asarray(list(edges_us), dtype=np.float64)
        w = np.asarray(list(weights), dtype=np.float64)
        if len(edges) != len(w) + 1:
            raise ArrivalError(
                "need len(edges_us) == len(weights) + 1, got "
                f"{len(edges)} edges for {len(w)} weights"
            )
        if len(w) == 0:
            raise ArrivalError("profile needs at least one segment")
        if not np.all(np.isfinite(edges)) or edges[0] != 0.0 \
                or np.any(np.diff(edges) <= 0):
            raise ArrivalError(
                "edges_us must be finite, start at 0 and strictly increase"
            )
        if not np.all(np.isfinite(w)) or np.any(w < 0) or not np.any(w > 0):
            raise ArrivalError(
                "weights must be finite, >= 0, with at least one > 0"
            )
        self.name = name
        self.edges_us = edges
        self.weights = w
        cum = np.empty(len(w) + 1, dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(w * np.diff(edges), out=cum[1:])
        self._cum = cum

    @classmethod
    def from_hourly(cls, weights: Iterable[float], hour_us: float = HOUR_US,
                    name: str = "") -> "LoadProfile":
        """A profile of equal ``hour_us``-wide segments (24 for a day)."""
        w = list(weights)
        edges = [i * float(hour_us) for i in range(len(w) + 1)]
        return cls(edges, w, name=name)

    @property
    def period_us(self) -> float:
        """The curve's period (the last edge)."""
        return float(self.edges_us[-1])

    def intensity_at(self, t_us: float) -> float:
        """Relative intensity at ``t_us`` (periodic), normalised so a
        flat profile reads 1.0 everywhere."""
        t = float(t_us) % self.period_us
        seg = int(np.searchsorted(self.edges_us, t, side="right")) - 1
        seg = min(max(seg, 0), len(self.weights) - 1)
        mean = self._cum[-1] / self.period_us
        return float(self.weights[seg]) / mean

    def warp(self, u: float) -> float:
        """Inverse-CDF map of one uniform ``u`` ∈ [0, 1] to an arrival
        time in ``[0, period_us]``.

        Mass lands proportionally to each segment's ``weight × width``;
        zero-weight segments receive no arrivals.  Monotone in ``u``.
        """
        return float(self.warp_array(np.array([u], dtype=np.float64))[0])

    def warp_array(self, us: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`warp`."""
        u = np.clip(np.asarray(us, dtype=np.float64), 0.0, 1.0)
        target = u * self._cum[-1]
        seg = np.searchsorted(self._cum, target, side="right") - 1
        seg = np.clip(seg, 0, len(self.weights) - 1)
        # Within a segment, mass accrues at `weight` per microsecond.
        density = np.where(self.weights[seg] > 0, self.weights[seg], 1.0)
        t = self.edges_us[seg] + (target - self._cum[seg]) / density
        # u == 1.0 lands past the last positive segment's mass; pin it
        # to that segment's right edge (the period for a positive tail).
        return np.minimum(t, self.edges_us[seg + 1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoadProfile):
            return NotImplemented
        return (
            np.array_equal(self.edges_us, other.edges_us)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # frozen-dataclass fields need hashability
        return hash((self.edges_us.tobytes(), self.weights.tobytes()))

    def __repr__(self) -> str:
        label = self.name or f"{len(self.weights)} segments"
        return f"LoadProfile({label!r}, period={self.period_us:.0f}µs)"

    def describe(self) -> str:
        """Short human-readable summary."""
        hours = self.period_us / HOUR_US
        return (f"{self.name or 'custom'} profile, "
                f"{len(self.weights)} segments over {hours:g}h")

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_jsonable`)."""
        return {
            "name": self.name,
            "edges_us": self.edges_us.tolist(),
            "weights": self.weights.tolist(),
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, Any]) -> "LoadProfile":
        """Decode :meth:`to_jsonable` output."""
        try:
            return cls(payload["edges_us"], payload["weights"],
                       name=str(payload.get("name", "")))
        except (KeyError, TypeError) as exc:
            raise ArrivalError(f"bad load-profile payload: {exc}") from exc


@dataclass(frozen=True)
class SessionSchedule:
    """One user's resolved timeline: login offset + per-session gaps.

    ``gaps_us[i]`` is the pause after session ``i`` ends (the user's
    logout-to-next-login churn); indexing past the tuple returns 0, so
    executors need not special-case the final session.
    """

    offset_us: float
    gaps_us: tuple[float, ...]

    def gap_after(self, session_id: int) -> float:
        """The gap following session ``session_id`` (0.0 past the end)."""
        if 0 <= session_id < len(self.gaps_us):
            return self.gaps_us[session_id]
        return 0.0


def _clamp_us(value: float) -> float:
    """A finite, non-negative duration (same rule as think-time draws)."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        return 0.0
    return value


@dataclass(frozen=True)
class ArrivalModel:
    """When users log in: first-login offsets and inter-session gaps.

    Without a profile, the first login is one draw from ``first_login``.
    With a profile, the first login is one uniform draw warped through
    the profile's inverse cumulative intensity — the profile *is* the
    arrival-time distribution over its period, which is exactly what a
    normalised intensity curve means.  Gaps are always plain
    ``session_gap`` draws, pre-drawn as one block — one per gap
    *between* sessions (``sessions - 1``), since a gap separates two
    logins and no gap follows the final logout.

    Determinism contract: :meth:`schedule` consumes only the dedicated
    ``first-login`` / ``session-gap`` streams of the user's existing
    stream family, in a fixed draw order, so the schedule depends on
    ``(root seed, user id, sessions)`` alone — never on the shard
    topology, the backend, or other users.
    """

    first_login: Distribution = field(
        default_factory=lambda: Uniform(0.0, DAY_US))
    session_gap: Distribution = field(
        default_factory=lambda: ShiftedExponential(30 * 60e6))
    profile: "LoadProfile | None" = None

    def with_profile(self, profile: "LoadProfile | None") -> "ArrivalModel":
        """This model with ``profile`` swapped in."""
        return replace(self, profile=profile)

    def schedule(self, streams: RandomStreams, user_id: int,
                 sessions: int) -> SessionSchedule:
        """Resolve one user's :class:`SessionSchedule`.

        ``streams`` is the *root* stream factory (the one synthesis
        forks per user); the model forks the same ``user-{id}`` family
        and draws from its own named streams, so arrivals never perturb
        the op stream.
        """
        if sessions < 0:
            raise ArrivalError(f"sessions must be >= 0, got {sessions}")
        fork = streams.fork(f"user-{user_id}")
        login_rng = fork.get("first-login")
        if self.profile is not None:
            offset = self.profile.warp(float(login_rng.random()))
        else:
            offset = _clamp_us(self.first_login.sample(login_rng))
        if sessions <= 1:
            return SessionSchedule(offset, ())
        raw = np.atleast_1d(np.asarray(
            self.session_gap.sample(fork.get("session-gap"),
                                    size=sessions - 1),
            dtype=np.float64,
        ))
        gaps = tuple(_clamp_us(g) for g in raw.tolist())
        return SessionSchedule(offset, gaps)

    def describe(self) -> str:
        """Short human-readable summary."""
        if self.profile is not None:
            login = self.profile.describe()
        else:
            login = self.first_login.describe()
        return f"logins: {login}; gaps: {self.session_gap.describe()}"


DEFAULT_ARRIVALS = ArrivalModel()
"""Uniform-over-a-day logins, exponential ~30 min inter-session gaps."""


# ---------------------------------------------------------------------------
# Named diurnal profiles
# ---------------------------------------------------------------------------

_PROFILES: dict[str, LoadProfile] = {}


def register_profile(profile: LoadProfile,
                     replace_existing: bool = False) -> LoadProfile:
    """Add a named profile to the registry."""
    if not profile.name:
        raise ArrivalError("only named profiles can be registered")
    if not replace_existing and profile.name in _PROFILES:
        raise ArrivalError(f"profile {profile.name!r} already registered")
    _PROFILES[profile.name] = profile
    return profile


def get_profile(name: str) -> LoadProfile:
    """Look a profile up by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ArrivalError(
            f"unknown load profile {name!r}; registered: {known}"
        ) from None


def profile_names() -> tuple[str, ...]:
    """All registered profile names, sorted."""
    return tuple(sorted(_PROFILES))


register_profile(LoadProfile.from_hourly([1.0] * 24, name="uniform"))
# The campus 9-to-5: ramp-in from 8, morning peak, lunch dip, afternoon
# peak, long evening tail — the classic double hump.
register_profile(LoadProfile.from_hourly(
    [0.2, 0.1, 0.1, 0.1, 0.1, 0.2, 0.4, 1.0, 2.4, 3.4, 3.2, 2.6,
     1.8, 2.4, 3.2, 3.0, 2.4, 1.4, 0.9, 0.8, 0.7, 0.6, 0.4, 0.3],
    name="office-hours",
))
# Batch window: jobs land overnight (22:00–06:00), near-silence by day.
register_profile(LoadProfile.from_hourly(
    [3.0, 3.2, 3.2, 3.0, 2.4, 1.6, 0.6, 0.1, 0.0, 0.0, 0.0, 0.0,
     0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.2, 0.4, 0.8, 1.6, 2.4, 3.0],
    name="nightly",
))
# Consumer evening peak: low mornings, climb through the afternoon,
# maximum 19:00–22:00.
register_profile(LoadProfile.from_hourly(
    [0.6, 0.3, 0.2, 0.1, 0.1, 0.2, 0.4, 0.7, 0.9, 1.0, 1.1, 1.2,
     1.4, 1.4, 1.5, 1.7, 2.0, 2.5, 3.0, 3.5, 3.6, 3.2, 2.2, 1.2],
    name="evening",
))


# ---------------------------------------------------------------------------
# JSON codec (the specjson "arrivals" block)
# ---------------------------------------------------------------------------


def arrival_model_to_jsonable(model: ArrivalModel) -> dict[str, Any]:
    """Encode an :class:`ArrivalModel` as a plain-JSON dict."""
    return {
        "first_login": to_jsonable(model.first_login),
        "session_gap": to_jsonable(model.session_gap),
        "profile": (model.profile.to_jsonable()
                    if model.profile is not None else None),
    }


def arrival_model_from_jsonable(payload: dict[str, Any]) -> ArrivalModel:
    """Decode :func:`arrival_model_to_jsonable` output."""
    if not isinstance(payload, dict):
        raise ArrivalError(
            "arrivals payload must be an object, got "
            f"{type(payload).__name__}"
        )
    try:
        profile_payload = payload.get("profile")
        return ArrivalModel(
            first_login=from_jsonable(payload["first_login"]),
            session_gap=from_jsonable(payload["session_gap"]),
            profile=(LoadProfile.from_jsonable(profile_payload)
                     if profile_payload else None),
        )
    except KeyError as exc:
        raise ArrivalError(f"arrivals payload missing {exc}") from exc
