"""Workload model: the thesis's Chapter 3 decisions as data types.

The model is

* **user-oriented, job-unspecific** — behaviour is described per *user
  type* (with a population fraction), never per job;
* **system-call level** — the generated stream is open/read/write/close/…;
* **distribution-valued** — every usage measure is a full
  :class:`~repro.distributions.Distribution`;
* **independent** — successive operations are drawn independently subject
  to logical constraints (an open precedes any read or write).

File categories follow Devarakonda & Iyer's taxonomy used throughout the
thesis: ``(file type, owner, type of use)`` — e.g. regular user files that
are read-only, new files, read-write files, temporaries, notes files and
other/system files; directories are "special files".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from ..distributions import Distribution, ShiftedExponential

__all__ = [
    "FileType",
    "Owner",
    "UseType",
    "FileCategory",
    "FileCategorySpec",
    "UsageSpec",
    "UserTypeSpec",
    "WorkloadSpec",
    "SpecError",
    "partition_user_ids",
]


def partition_user_ids(n_users: int, n_shards: int) -> tuple[tuple[int, ...], ...]:
    """Deterministically partition ``range(n_users)`` into ``n_shards`` slices.

    Users are dealt round-robin (user ``u`` lands in shard ``u % n_shards``),
    so every shard receives a representative mix of the population — the
    type assignment from :meth:`WorkloadSpec.assign_user_types` lists each
    type's users contiguously, and a contiguous split would give whole
    shards a single user type.  Shards are disjoint, cover the population,
    and differ in size by at most one user.  ``n_shards > n_users`` is
    allowed: the surplus shards are empty (they run zero users and
    contribute a zero tally), which keeps fleet topologies valid at any
    scale without special-casing small populations.
    """
    if n_users < 1:
        raise SpecError(f"n_users must be >= 1, got {n_users}")
    if n_shards < 1:
        raise SpecError(f"n_shards must be >= 1, got {n_shards}")
    return tuple(
        tuple(range(shard, n_users, n_shards)) for shard in range(n_shards)
    )


class SpecError(ValueError):
    """Raised for inconsistent workload specifications."""


class FileType(enum.Enum):
    """Directory vs regular file (Table 5.1's ``file type`` column)."""

    DIR = "DIR"
    REG = "REG"


class Owner(enum.Enum):
    """Who the file belongs to (Table 5.1's ``owner`` column).

    ``USER`` files live in each virtual user's directory; ``NOTES`` (the
    campus notesfiles system) and ``OTHER`` (system files) are shared.
    """

    USER = "USER"
    NOTES = "NOTES"
    OTHER = "OTHER"


class UseType(enum.Enum):
    """How the files in a category are used (``type of use`` column)."""

    RDONLY = "RDONLY"
    NEW = "NEW"
    RD_WRT = "RD-WRT"
    TEMP = "TEMP"


@dataclass(frozen=True)
class FileCategory:
    """A (file type, owner, type of use) cell of the characterization."""

    file_type: FileType
    owner: Owner
    use: UseType

    @cached_property
    def key(self) -> str:
        """Stable string key, e.g. ``"REG:USER:RDONLY"``.

        Cached: the hot synthesis path reads a category's key once per
        plan, and an f-string over three enum attributes per read shows
        up in the per-session profile.  ``cached_property`` stores into
        the instance ``__dict__`` directly, which a frozen dataclass
        permits (and ``__eq__``/``__hash__`` ignore).
        """
        return f"{self.file_type.value}:{self.owner.value}:{self.use.value}"

    @property
    def is_directory(self) -> bool:
        """True for the DIR categories."""
        return self.file_type is FileType.DIR

    @property
    def is_shared(self) -> bool:
        """True when the files live outside per-user directories."""
        return self.owner is not Owner.USER

    @property
    def creates_files(self) -> bool:
        """NEW and TEMP categories create their files during the session."""
        return self.use in (UseType.NEW, UseType.TEMP)

    @property
    def reads(self) -> bool:
        """Whether sessions read bytes from files of this category."""
        return self.use in (UseType.RDONLY, UseType.RD_WRT, UseType.TEMP)

    @property
    def writes(self) -> bool:
        """Whether sessions write bytes to files of this category."""
        return self.use in (UseType.NEW, UseType.RD_WRT, UseType.TEMP)

    @classmethod
    def from_key(cls, key: str) -> "FileCategory":
        """Parse a ``"REG:USER:RDONLY"`` key back into a category."""
        try:
            ft, owner, use = key.split(":")
            return cls(FileType(ft), Owner(owner), UseType(use))
        except ValueError as exc:
            raise SpecError(f"bad category key {key!r}") from exc

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class FileCategorySpec:
    """FSC input: how to populate one category in the new file system.

    ``fraction_of_files`` is Table 5.1's "percent of files in category"
    (as a fraction); ``size_distribution`` generalises its mean file size.
    """

    category: FileCategory
    size_distribution: Distribution
    fraction_of_files: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction_of_files <= 1.0):
            raise SpecError(
                "fraction_of_files must be in [0,1], got "
                f"{self.fraction_of_files!r} for {self.category.key}"
            )


@dataclass(frozen=True)
class UsageSpec:
    """USIM input for one (user type, file category) combination.

    Generalises Table 5.2's row: accesses(-per-byte), file size and file
    count become distributions, "percent of users accessing category"
    stays a probability.
    """

    category: FileCategory
    access_per_byte: Distribution
    file_count: Distribution
    file_size: Distribution
    fraction_of_users: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction_of_users <= 1.0):
            raise SpecError(
                "fraction_of_users must be in [0,1], got "
                f"{self.fraction_of_users!r} for {self.category.key}"
            )


def _default_access_size() -> Distribution:
    """The thesis's section 5.1 default: exponential, mean 1 KiB."""
    return ShiftedExponential(1024.0)


def _default_think_time() -> Distribution:
    """The thesis's section 5.1 default: exponential, mean 5 000 µs."""
    return ShiftedExponential(5000.0)


@dataclass(frozen=True)
class UserTypeSpec:
    """One user type: its population share and its usage distributions."""

    name: str
    fraction: float
    usage: tuple[UsageSpec, ...]
    think_time: Distribution = field(default_factory=_default_think_time)
    access_size: Distribution = field(default_factory=_default_access_size)
    max_open_files: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("user type needs a non-empty name")
        if not (0.0 < self.fraction <= 1.0):
            raise SpecError(
                f"fraction must be in (0,1], got {self.fraction!r} "
                f"for user type {self.name!r}"
            )
        if not self.usage:
            raise SpecError(f"user type {self.name!r} has no usage specs")
        if self.max_open_files < 1:
            raise SpecError("max_open_files must be >= 1")
        keys = [u.category.key for u in self.usage]
        if len(keys) != len(set(keys)):
            raise SpecError(
                f"user type {self.name!r} repeats a category: {keys}"
            )

    def usage_for(self, category: FileCategory) -> UsageSpec | None:
        """The usage spec for ``category`` or None."""
        for usage_spec in self.usage:
            if usage_spec.category == category:
                return usage_spec
        return None


@dataclass(frozen=True)
class WorkloadSpec:
    """The complete workload generator input (Figure 4.1's left edge)."""

    file_categories: tuple[FileCategorySpec, ...]
    user_types: tuple[UserTypeSpec, ...]
    total_files: int = 400
    n_users: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.file_categories:
            raise SpecError("need at least one file category")
        if not self.user_types:
            raise SpecError("need at least one user type")
        if self.total_files < 1:
            raise SpecError("total_files must be >= 1")
        if self.n_users < 1:
            raise SpecError("n_users must be >= 1")
        total = sum(ut.fraction for ut in self.user_types)
        if abs(total - 1.0) > 1e-6:
            raise SpecError(
                f"user type fractions must sum to 1, got {total!r}"
            )
        names = [ut.name for ut in self.user_types]
        if len(names) != len(set(names)):
            raise SpecError(f"duplicate user type names: {names}")
        keys = [fc.category.key for fc in self.file_categories]
        if len(keys) != len(set(keys)):
            raise SpecError(f"duplicate file categories: {keys}")

    def category_spec(self, category: FileCategory) -> FileCategorySpec | None:
        """The FSC spec for ``category`` or None."""
        for spec in self.file_categories:
            if spec.category == category:
                return spec
        return None

    def assign_user_types(self) -> list[UserTypeSpec]:
        """Apportion ``n_users`` across types by largest remainder.

        Deterministic, so a "80% heavy / 20% light" population of five
        users is always 4 + 1 — matching how the thesis describes its
        experiment populations.
        """
        quotas = [ut.fraction * self.n_users for ut in self.user_types]
        counts = [int(q) for q in quotas]
        remainders = sorted(
            range(len(quotas)),
            key=lambda i: (quotas[i] - counts[i], -i),
            reverse=True,
        )
        shortfall = self.n_users - sum(counts)
        for i in remainders[:shortfall]:
            counts[i] += 1
        assignment: list[UserTypeSpec] = []
        for user_type, count in zip(self.user_types, counts):
            assignment.extend([user_type] * count)
        return assignment[: self.n_users]

    def shard_user_ids(self, n_shards: int) -> tuple[tuple[int, ...], ...]:
        """This population's :func:`partition_user_ids` split."""
        return partition_user_ids(self.n_users, n_shards)
