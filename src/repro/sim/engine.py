"""Discrete-event simulation engine.

The thesis measured SUN NFS on real hardware; our substitute testbed is a
discrete-event simulation, so concurrent users, server queueing and disk
latency are modelled in virtual microseconds and every run is exactly
reproducible.

Processes are plain Python generators.  A process yields *commands* to the
engine:

* :class:`Delay` — suspend for a simulated duration,
* :class:`Acquire` / :class:`Release` — FIFO resource discipline
  (see :mod:`repro.sim.resources`),
* :class:`Join` — wait for another process to finish.

``yield from`` composes sub-processes naturally, which is how the NFS
client exposes timed system calls to the USIM's user processes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator

__all__ = ["Engine", "Process", "Delay", "Acquire", "Release", "Join",
           "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for engine misuse (negative delays, foreign commands, ...)."""


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for ``duration`` simulated time units."""

    duration: float


@dataclass(frozen=True)
class Acquire:
    """Request one unit of ``resource``; resumes when granted (FIFO)."""

    resource: "Any"


@dataclass(frozen=True)
class Release:
    """Return one unit of ``resource``; resumes immediately."""

    resource: "Any"


@dataclass(frozen=True)
class Join:
    """Suspend until ``process`` finishes; the join yields its result."""

    process: "Process"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Process:
    """Handle for a running simulation process."""

    def __init__(self, engine: "Engine", generator: Generator, name: str):
        self._engine = engine
        self._generator = generator
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Process] = []

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Engine:
    """The event loop: a time-ordered heap of callbacks.

    Time units are dimensionless; the workload experiments use
    microseconds throughout.  Event ordering at equal timestamps is FIFO
    by scheduling order, which keeps runs deterministic.
    """

    def __init__(self):
        self._heap: list[_Event] = []
        self._seq = 0
        self._now = 0.0
        self._active_processes = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events still queued."""
        return len(self._heap)

    @property
    def active_processes(self) -> int:
        """Processes spawned but not yet finished."""
        return self._active_processes

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._heap, _Event(self._now + delay, self._seq, action))

    def spawn(self, generator: Generator | Iterator, name: str = "proc") -> Process:
        """Register a generator as a process and start it at the current time."""
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn needs a generator, got {type(generator).__name__}; "
                "did you call the function with ()?"
            )
        process = Process(self, generator, name)
        self._active_processes += 1
        self.schedule(0.0, lambda: self._step(process, None))
        return process

    # -- execution -------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the final simulation time.
        """
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = event.time
            event.action()
        return self._now

    def run_until_processes_finish(self, processes: list[Process],
                                   limit: float | None = None,
                                   truncate: bool = False) -> float:
        """Run until every process in ``processes`` is done.

        ``limit`` bounds the clock: by default exceeding it raises (a
        runaway guard); with ``truncate=True`` the engine instead stops
        the clock *at* the limit and returns, leaving later events
        unprocessed (workload truncation — unfinished processes simply
        never resume).  A deadlock — no events pending while tracked
        processes are still alive — raises in every mode.
        """
        while not all(p.done for p in processes):
            if not self._heap:
                stuck = [p.name for p in processes if not p.done]
                raise SimulationError(
                    f"deadlock: no events pending but processes alive: {stuck}"
                )
            event = self._heap[0]
            if limit is not None and event.time > limit:
                if truncate:
                    self._now = limit
                    return self._now
                raise SimulationError(f"simulation exceeded limit {limit}")
            heapq.heappop(self._heap)
            self._now = event.time
            event.action()
        return self._now

    # -- process stepping --------------------------------------------------------

    def _step(self, process: Process, send_value: Any) -> None:
        """Advance ``process`` by one command."""
        try:
            command = process._generator.send(send_value)
        except StopIteration as stop:
            self._finish(process, stop.value, None)
            return
        except BaseException as exc:  # propagate at run() boundary
            self._finish(process, None, exc)
            raise
        self._dispatch(process, command)

    def _dispatch(self, process: Process, command: Any) -> None:
        if isinstance(command, Delay):
            if command.duration < 0:
                raise SimulationError(
                    f"process {process.name!r} yielded negative delay"
                )
            self.schedule(command.duration, lambda: self._step(process, None))
        elif isinstance(command, Acquire):
            command.resource._enqueue(process)
        elif isinstance(command, Release):
            command.resource._release()
            self.schedule(0.0, lambda: self._step(process, None))
        elif isinstance(command, Join):
            target = command.process
            if target.done:
                self.schedule(0.0, lambda: self._step(process, target.result))
            else:
                target._joiners.append(process)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown command "
                f"{command!r}; use Delay/Acquire/Release/Join"
            )

    def _finish(self, process: Process, result: Any,
                error: BaseException | None) -> None:
        process.done = True
        process.result = result
        process.error = error
        self._active_processes -= 1
        for joiner in process._joiners:
            self.schedule(0.0, lambda j=joiner: self._step(j, process.result))
        process._joiners.clear()

    # resource support: resources call back into the engine to resume grantees

    def _resume(self, process: Process) -> None:
        self.schedule(0.0, lambda: self._step(process, None))
