"""Statistics accumulators used across the simulation and the analyzer.

* :class:`RunningStats` — Welford's online mean/variance (numerically
  stable; used for access-size and response-time summaries like Table 5.3).
* :class:`TimeWeightedValue` — integral of a piecewise-constant signal over
  simulated time (resource utilisation, queue lengths).
* :class:`Histogram` — fixed-bin counting histogram with the moving-average
  smoothing the thesis applies to Figures 5.3–5.5.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Engine

__all__ = ["RunningStats", "TimeWeightedValue", "Histogram", "smooth_counts"]


class RunningStats:
    """Welford online accumulator for count/mean/variance/min/max."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations."""
        for value in values:
            self.add(value)

    def add_array(self, values: np.ndarray) -> None:
        """Fold a whole array in one vectorized step.

        Computes the array's count/mean/M2/min/max with NumPy and folds
        them in via the parallel Welford :meth:`merge`.  Mean and
        variance can differ from element-wise :meth:`add` in the last
        few float bits (both are valid accumulation orders); counts and
        extrema are exact.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        batch = RunningStats()
        batch.count = int(values.size)
        batch._mean = float(values.mean())
        batch._m2 = float(np.sum((values - batch._mean) ** 2))
        batch.minimum = float(values.min())
        batch.maximum = float(values.max())
        merged = self.merge(batch)
        self.count = merged.count
        self._mean = merged._mean
        self._m2 = merged._m2
        self.minimum = merged.minimum
        self.maximum = merged.maximum

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Unbiased (n-1) variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sample_std(self) -> float:
        """Unbiased standard deviation."""
        return math.sqrt(self.sample_variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        if self.count == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other.count == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        n = self.count + other.count
        delta = other._mean - self._mean
        merged.count = n
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2 + delta**2 * self.count * other.count / n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    @classmethod
    def merge_all(cls, parts: Iterable["RunningStats"]) -> "RunningStats":
        """Fold many accumulators into one (left-to-right pairwise merge).

        Used by the fleet layer to combine per-shard response-time stats;
        the merge order is the shard order, so the result is deterministic
        for a fixed shard count.
        """
        merged = cls()
        for part in parts:
            merged = merged.merge(part)
        return merged

    def as_state(self) -> dict:
        """JSON-able full state (unlike :meth:`summary`, merge-exact).

        Carries the Welford ``m2`` term so :meth:`from_state` followed by
        :meth:`merge` reproduces the in-memory parallel merge exactly;
        the infinite extrema of an empty accumulator serialise as None.
        """
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunningStats":
        """Rebuild an accumulator from :meth:`as_state` output."""
        stats = cls()
        stats.count = int(state["count"])
        stats._mean = float(state["mean"])
        stats._m2 = float(state["m2"])
        if stats.count:
            stats.minimum = float(state["min"])
            stats.maximum = float(state["max"])
        return stats

    def summary(self) -> dict[str, float]:
        """Plain-dict snapshot for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.sample_std,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class TimeWeightedValue:
    """Integral of a piecewise-constant signal over simulation time."""

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._last_time = engine.now
        self._current = 0.0
        self._integral = 0.0

    def record(self, value: float) -> None:
        """The signal takes ``value`` from the current simulated instant."""
        now = self._engine.now
        self._integral += self._current * (now - self._last_time)
        self._last_time = now
        self._current = float(value)

    def time_average(self) -> float:
        """Average value from t=0 to the engine's current time."""
        now = self._engine.now
        total = self._integral + self._current * (now - self._last_time)
        if now <= 0:
            return 0.0
        return total / now


def smooth_counts(counts: Sequence[float], window: int = 3,
                  passes: int = 1) -> np.ndarray:
    """Centered moving-average smoothing of histogram counts.

    This reproduces the "after smoothing" panels of Figures 5.3–5.5: a
    symmetric window (edges use the available neighbours), optionally
    applied repeatedly.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd number, got {window}")
    out = np.asarray(counts, dtype=float)
    half = window // 2
    for _ in range(passes):
        padded = np.pad(out, half, mode="edge")
        kernel = np.ones(window) / window
        out = np.convolve(padded, kernel, mode="valid")
    return out


class Histogram:
    """Fixed-range binning histogram with paper-style smoothing."""

    def __init__(self, lo: float, hi: float, n_bins: int):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if not (hi > lo):
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_bins = int(n_bins)
        self.counts = np.zeros(self.n_bins, dtype=float)
        self.underflow = 0
        self.overflow = 0

    @property
    def edges(self) -> np.ndarray:
        """Bin edges (length ``n_bins + 1``)."""
        return np.linspace(self.lo, self.hi, self.n_bins + 1)

    @property
    def centers(self) -> np.ndarray:
        """Bin centers (length ``n_bins``)."""
        edges = self.edges
        return 0.5 * (edges[:-1] + edges[1:])

    def add(self, value: float) -> None:
        """Count ``value`` into its bin (under/overflow tracked separately)."""
        if value < self.lo:
            self.underflow += 1
            return
        if value >= self.hi:
            # The top edge itself belongs to the last bin.
            if value == self.hi:
                self.counts[-1] += 1
            else:
                self.overflow += 1
            return
        width = (self.hi - self.lo) / self.n_bins
        idx = int((value - self.lo) / width)
        self.counts[min(idx, self.n_bins - 1)] += 1

    def add_many(self, values: Iterable[float]) -> None:
        """Count a batch."""
        for value in values:
            self.add(value)

    def add_array(self, values: np.ndarray) -> None:
        """Count a whole array in one vectorized step.

        Bin-for-bin identical to calling :meth:`add` per element: values
        below ``lo`` underflow, values above ``hi`` overflow, ``hi``
        itself lands in the last bin, and the index truncation matches
        the scalar ``int()`` floor for the non-negative offsets involved.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        self.underflow += int((values < self.lo).sum())
        self.overflow += int((values > self.hi).sum())
        in_range = values[(values >= self.lo) & (values <= self.hi)]
        if in_range.size:
            width = (self.hi - self.lo) / self.n_bins
            idx = ((in_range - self.lo) / width).astype(np.int64)
            np.minimum(idx, self.n_bins - 1, out=idx)
            self.counts += np.bincount(idx, minlength=self.n_bins)

    @property
    def total(self) -> int:
        """In-range observation count."""
        return int(self.counts.sum())

    def smoothed(self, window: int = 3, passes: int = 1) -> np.ndarray:
        """Moving-average smoothed counts (the thesis's "after smoothing")."""
        return smooth_counts(self.counts, window=window, passes=passes)
