"""Discrete-event simulation substrate.

Generator-based processes over a deterministic event heap, FIFO resources
with utilisation accounting, and the statistics accumulators shared with
the analyzer.
"""

from .engine import (
    Acquire,
    Delay,
    Engine,
    Join,
    Process,
    Release,
    SimulationError,
)
from .resources import Resource
from .stats import Histogram, RunningStats, TimeWeightedValue, smooth_counts

__all__ = [
    "Acquire",
    "Delay",
    "Engine",
    "Join",
    "Process",
    "Release",
    "SimulationError",
    "Resource",
    "Histogram",
    "RunningStats",
    "TimeWeightedValue",
    "smooth_counts",
]
