"""Contended resources for the simulation engine.

A :class:`Resource` models a server with ``capacity`` identical units and a
FIFO queue — the building block for the simulated NFS server's CPU and
disk.  Utilisation and queue statistics are collected as time-weighted
integrals so experiments can report server load alongside response times.
"""

from __future__ import annotations

from collections import deque

from .engine import Engine, Process, SimulationError
from .stats import TimeWeightedValue

__all__ = ["Resource"]


class Resource:
    """A FIFO multi-server resource.

    Processes interact through the engine commands::

        yield Acquire(resource)
        ...  # hold the resource
        yield Release(resource)

    Statistics
    ----------
    ``utilization(now)`` — time-average busy fraction per unit;
    ``mean_queue_length(now)`` — time-average waiters;
    ``total_acquisitions`` — grant count.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[Process] = deque()
        self.total_acquisitions = 0
        self._busy = TimeWeightedValue(engine)
        self._queue = TimeWeightedValue(engine)

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Processes waiting for a grant."""
        return len(self._waiting)

    # -- engine callbacks -----------------------------------------------------

    def _enqueue(self, process: Process) -> None:
        if self._in_use < self.capacity:
            self._grant(process)
        else:
            self._waiting.append(process)
            self._queue.record(len(self._waiting))

    def _release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        self._busy.record(self._in_use)
        if self._waiting:
            nxt = self._waiting.popleft()
            self._queue.record(len(self._waiting))
            self._grant(nxt)

    def _grant(self, process: Process) -> None:
        self._in_use += 1
        self.total_acquisitions += 1
        self._busy.record(self._in_use)
        self.engine._resume(process)

    # -- statistics --------------------------------------------------------------

    def utilization(self) -> float:
        """Time-average busy fraction in [0, 1] up to the current time."""
        average_busy = self._busy.time_average()
        return average_busy / self.capacity

    def mean_queue_length(self) -> float:
        """Time-average number of waiting processes."""
        return self._queue.time_average()

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, capacity={self.capacity}, "
            f"in_use={self._in_use}, queued={len(self._waiting)})"
        )
