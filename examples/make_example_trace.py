"""Regenerate the bundled example trace (`examples/example_trace.csv`).

The trace is a deterministic export of a small `dev-team` fleet run in
the generic CSV schema (timestamp/user/session/op/path/size/duration
plus file-size and category hints), i.e. exactly what a reasonably rich
external tracer could have produced.  The README's trace quickstart
calibrates a spec from it and closes the loop with `trace validate`.

Run from the repo root::

    PYTHONPATH=src python examples/make_example_trace.py
"""

import pathlib

from repro.core import WorkloadGenerator
from repro.fleet import FleetConfig, run_fleet
from repro.scenarios import get_scenario
from repro.traces import export_csv
from repro.vfs import MemoryFileSystem

SCENARIO = "dev-team"
USERS = 4
SESSIONS_PER_USER = 2
TOTAL_FILES = 64
SEED = 11

OUT = pathlib.Path(__file__).parent / "example_trace.csv"


def main() -> None:
    result = run_fleet(
        FleetConfig(
            scenario=SCENARIO,
            users=USERS,
            shards=1,
            sessions_per_user=SESSIONS_PER_USER,
            seed=SEED,
            total_files=TOTAL_FILES,
            collect_ops=True,
        )
    )
    # The FSC layout is deterministic for the seed; it supplies the
    # file-size column the way NFS attribute replies would.
    spec = get_scenario(SCENARIO).build(USERS, SEED, total_files=TOTAL_FILES)
    layout = WorkloadGenerator(spec).create_file_system(MemoryFileSystem())
    with OUT.open("w", encoding="utf-8") as stream:
        rows = export_csv(result.log, stream, layout)
    print(f"{OUT}: {rows} operations, {OUT.stat().st_size} bytes")


if __name__ == "__main__":
    main()
