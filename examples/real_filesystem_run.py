#!/usr/bin/env python3
"""Driving a *real* file system, as the thesis's generator does natively.

The generator's real mode creates a fresh sandbox directory (never
touching existing files — the reason the FSC builds "a new file system"),
executes the generated system calls through ``os.*``, and measures
wall-clock response times with the before/after method of section 5.1.

Run:  python examples/real_filesystem_run.py [sandbox_dir]
"""

import sys
import tempfile

from repro import WorkloadGenerator, paper_workload_spec
from repro.harness import format_kv


def main() -> None:
    if len(sys.argv) > 1:
        sandbox = sys.argv[1]
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-workload-")
        sandbox = cleanup.name

    spec = paper_workload_spec(n_users=2, total_files=200, seed=17)
    generator = WorkloadGenerator(spec)
    # sleep_thinks=False replays think times logically without sleeping;
    # pass True to generate live, paced load against the directory.
    result = generator.run_real(sandbox, sessions_per_user=5,
                                sleep_thinks=False)

    analyzer = result.analyzer
    resp = analyzer.response_time_stats().summary()
    print(format_kv(
        {
            "sandbox": sandbox,
            "sessions": len(result.log.sessions),
            "system calls": len(result.log.operations),
            "mean response (µs, wall clock)": resp["mean"],
            "response std (µs)": resp["std"],
            "slowest call (µs)": resp["max"],
            "bytes moved": result.log.total_bytes,
        },
        title="Real-file-system run",
    ))
    print()
    print("Per-syscall wall-clock means (µs):")
    for op in ("open", "creat", "read", "write", "close", "unlink"):
        stats = analyzer.response_time_stats(ops=(op,))
        if stats.count:
            print(f"  {op:7s} n={stats.count:6d}  mean={stats.mean:8.2f}")

    if cleanup is not None:
        cleanup.cleanup()


if __name__ == "__main__":
    main()
