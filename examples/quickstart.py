#!/usr/bin/env python3
"""Quickstart: generate a synthetic workload and measure a simulated NFS.

Builds the paper's example configuration (Tables 5.1/5.2 with the
exponential assumption), creates the initial file system, simulates three
heavy-I/O users for five login sessions each against the simulated SUN
NFS, and prints the measurements the thesis reports.

Run:  python examples/quickstart.py
"""

from repro import WorkloadGenerator, paper_workload_spec
from repro.harness import format_kv


def main() -> None:
    # 1. Specify the workload: 3 users, Table 5.1/5.2 behaviour,
    #    think time exp(5 000 µs), access size exp(1 024 B).
    spec = paper_workload_spec(n_users=3, total_files=300, seed=42)

    # 2. The generator wires GDS -> FSC -> USIM (Figure 4.1).
    generator = WorkloadGenerator(spec)
    print(format_kv(
        {k: f"{v:,} B" for k, v in list(generator.memory_report().items())[-3:]},
        title="GDS CDF-table memory (last entries + total)",
    ))
    print()

    # 3. Run the simulated experiment.
    result = generator.run_simulated(sessions_per_user=5)
    analyzer = result.analyzer

    resp = analyzer.response_time_stats().summary()
    size = analyzer.access_size_stats().summary()
    print(format_kv(
        {
            "login sessions": len(result.log.sessions),
            "system calls executed": len(result.log.operations),
            "simulated time (s)": result.simulated_duration_us / 1e6,
            "mean access size (B)": size["mean"],
            "mean response time (µs)": resp["mean"],
            "response std (µs)": resp["std"],
            "response per byte (µs/B)": analyzer.response_per_byte(),
        },
        title="Measurement summary (cf. Table 5.3)",
    ))
    print()

    # 4. The Figure 5.3 usage measure, rendered the way the GDS would.
    print(analyzer.render_measure_figure("access_per_byte"))


if __name__ == "__main__":
    main()
