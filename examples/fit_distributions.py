#!/usr/bin/env python3
"""The GDS workflow: specify, fit and tabulate distributions.

Demonstrates every input path the thesis's Graphic Distribution Specifier
supports — parametric families (phase-type exponential, multi-stage
gamma), direct PDF/CDF tables, and fitting to empirical samples — with
terminal rendering in place of the X11 display.

Run:  python examples/fit_distributions.py
"""

import numpy as np

from repro import DistributionSpecifier, MultiStageGamma, PhaseTypeExponential
from repro.harness import format_kv


def main() -> None:
    gds = DistributionSpecifier(table_points=257)

    # 1. Parametric specification (the Figure 5.1/5.2 example panels).
    gds.specify(
        "fig-5.1-panel-3",
        PhaseTypeExponential([0.4, 0.3, 0.3], [12.7, 18.2, 24.5],
                             [0.0, 18.0, 41.0]),
    )
    gds.specify(
        "fig-5.2-panel-3",
        MultiStageGamma([0.7, 0.2, 0.1], [1.3, 1.5, 1.3],
                        [12.3, 12.4, 12.3], [0.0, 23.0, 41.0]),
    )
    print(gds.render("fig-5.1-panel-3"))
    print()
    print(gds.render("fig-5.2-panel-3"))
    print()

    # 2. Direct tabular input (density values straight into the GDS).
    gds.specify_pdf_values("triangular", [0.0, 500.0, 1000.0],
                           [0.0, 1.0, 0.0])

    # 3. Fitting an empirical sample — here, synthetic "measured" access
    #    sizes: a bimodal mixture a single exponential cannot represent.
    rng = np.random.default_rng(0)
    samples = np.concatenate([
        rng.exponential(400.0, size=6000),
        3000.0 + rng.exponential(800.0, size=3000),
    ])
    for family in ("exponential", "gamma"):
        fit = gds.fit(f"access-size-{family}", samples, family=family,
                      n_phases=2)
        print(f"{family:12s} fit: {fit.describe()}")
    best = gds.fit("access-size-best", samples, family="auto", n_phases=3)
    print(f"{'auto':12s} fit: {best.describe()}")
    print()
    print(gds.render("access-size-best"))
    print()

    # 4. CDF tables — what the FSC and USIM actually consume — and the
    #    section 4.2 memory footprint.
    table = gds.table("access-size-best")
    draws = table.sample(np.random.default_rng(1), size=20_000)
    print(format_kv(
        {
            "registered distributions": len(gds),
            "table knots": table.n_points,
            "sample mean (table)": float(np.mean(draws)),
            "sample mean (data)": float(np.mean(samples)),
            "total table memory (B)": gds.memory_report()["TOTAL"],
        },
        title="GDS output",
    ))


if __name__ == "__main__":
    main()
