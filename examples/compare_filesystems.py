#!/usr/bin/env python3
"""Section 5.3: comparing candidate file systems under the same workload.

The thesis's procedure: characterise the environment once, then replay
the *identical* user population against each candidate file system and
compare response times.  Identical seeds make the operation streams
call-for-call equal across candidates, so the comparison is controlled.

Candidates here: simulated SUN NFS, a local-disk file system, and an
AFS-like whole-file-caching file system.

Run:  python examples/compare_filesystems.py
"""

from repro.harness import compare_file_systems


def main() -> None:
    for heavy_fraction, label in ((1.0, "100% heavy I/O users"),
                                  (0.2, "20% heavy / 80% light users")):
        comparison = compare_file_systems(
            n_users=3,
            sessions_total=18,
            total_files=250,
            seed=11,
            heavy_fraction=heavy_fraction,
        )
        print(f"Population: {label}")
        print(comparison.formatted())
        print()

    print("Reading the table the way section 5.3 prescribes: one file")
    print("system wins on mean latency (local disk has no network hop),")
    print("another on per-byte cost (AFS serves reads from its cache);")
    print("the right choice depends on the lab's own workload mix.")


if __name__ == "__main__":
    main()
