#!/usr/bin/env python3
"""Section 5.2: measuring the (simulated) SUN NFS under varied load.

Reproduces the thesis's measurement campaign at reduced size: response
time per byte for 1..4 concurrent users under three populations —
all extremely-heavy (zero think time), 100% heavy (5 000 µs) and 100%
light (20 000 µs) — plus the access-size sweep of Figure 5.12.

Run:  python examples/measure_nfs.py
"""

from repro.harness import (
    figure_5_12,
    format_series,
    response_per_byte_vs_users,
)


def main() -> None:
    populations = (
        ("all extremely heavy I/O (think 0)", 1.0, 0.0),
        ("100% heavy I/O (think 5 000 µs)", 1.0, 5000.0),
        ("100% light I/O (think 20 000 µs)", 0.0, 5000.0),
    )
    for title, heavy_fraction, heavy_think in populations:
        users, values = response_per_byte_vs_users(
            heavy_fraction=heavy_fraction,
            heavy_think_us=heavy_think,
            max_users=4,
            sessions_total=20,
            total_files=250,
            seed=7,
        )
        print(format_series(users, [round(v, 2) for v in values],
                            "users", "µs/byte", title=title))
        print()

    fig = figure_5_12(access_sizes=(128, 512, 1024, 2048),
                      sessions_total=20, total_files=250, seed=7)
    print(fig.formatted())
    print()
    print("Larger access sizes amortise fixed per-call costs — the")
    print("thesis's argument for buffered language-library I/O.")


if __name__ == "__main__":
    main()
